//! Experiment harness: one function per table/figure of the paper.
//!
//! Each function runs the corresponding experiment on the simulated
//! platforms and renders the rows/series the paper reports, so
//! `cargo run -p bmhive-bench --bin repro` regenerates the entire
//! evaluation. All experiments are deterministic in their seed.

pub mod harness;
pub mod merge;
pub mod par;
pub mod sweep;

use std::fmt::Write as _;

use bmhive_cloud::blockstore::IoKind;
use bmhive_cloud::catalog::{ServerConstraints, INSTANCE_CATALOG};
use bmhive_cloud::cost::CostModel;
use bmhive_cloud::fleet::{ExitCensus, ExitRateStream, PreemptionStudy, RegionHostDay};
use bmhive_cloud::security::{ServiceKind, ServiceProfile};
use bmhive_cpu::nested::NestedVirtModel;
use bmhive_hypervisor::IoPath;
use bmhive_iobond::{steps, IoBondProfile};
use bmhive_telemetry as telemetry;
use bmhive_workloads::sockperf::LatencyTool;
use bmhive_workloads::{
    env::GuestEnv, fio, mariadb, netperf, nginx, redis, sockperf, spec, stream,
};

/// Renders Table 1: the qualitative three-service comparison.
pub fn table1() -> String {
    let mut out = String::new();
    table1_into(&mut out);
    out
}

/// Renders Table 1 into a caller-provided buffer. With a warmed
/// (pre-sized) buffer the render itself performs no allocations.
pub fn table1_into(out: &mut String) {
    writeln!(out, "Table 1. Comparison of three cloud services").unwrap();
    writeln!(
        out,
        "{:<28} | {:<52} | {:<38} | {:<44} | Density",
        "Service", "Security", "Isolation", "Performance"
    )
    .unwrap();
    for kind in ServiceKind::ALL {
        let (service, security, isolation, perf, tenants) =
            ServiceProfile::of(kind).table_row_parts();
        writeln!(
            out,
            "{service:<28} | {security:<52} | {isolation:<38} | {perf:<44} | {tenants} tenant(s)/server"
        )
        .unwrap();
    }
    telemetry::add_events(ServiceKind::ALL.len() as u64);
}

/// Renders Table 2: the VM-exit census over a synthetic 300 000-VM
/// fleet.
pub fn table2(seed: u64) -> String {
    let census = ExitCensus::run(300_000, &[10_000.0, 50_000.0, 100_000.0], seed);
    let mut out = String::new();
    writeln!(
        out,
        "Table 2. Number of VM exits per second per vCPU ({} VMs, 5-minute census)",
        census.total()
    )
    .unwrap();
    writeln!(
        out,
        "{:>12} | {:>14} | {:>10}",
        "# of exits", "percent of VMs", "paper"
    )
    .unwrap();
    let paper = [3.82, 0.37, 0.13];
    for ((threshold, pct), paper_pct) in census.rows().into_iter().zip(paper) {
        writeln!(
            out,
            "{:>11}K | {:>13.2}% | {:>9.2}%",
            threshold as u64 / 1000,
            pct,
            paper_pct
        )
        .unwrap();
    }
    out
}

/// Renders Fig. 1: preemption percentiles for 20 000 shared + 20 000
/// exclusive VMs over 24 hours.
pub fn fig1(seed: u64) -> String {
    let study = PreemptionStudy::run(20_000, seed);
    let mut out = String::new();
    writeln!(
        out,
        "Fig. 1. VM preemption by the hypervisor/host (percent of CPU time)"
    )
    .unwrap();
    writeln!(
        out,
        "{:>4} | {:>12} {:>12} | {:>14} {:>14}",
        "hour", "shared p99", "shared p99.9", "exclusive p99", "exclusive p99.9"
    )
    .unwrap();
    for h in (0..24).step_by(3) {
        writeln!(
            out,
            "{:>4} | {:>11.2}% {:>11.2}% | {:>13.2}% {:>13.2}%",
            h,
            study.shared_p99[h],
            study.shared_p999[h],
            study.exclusive_p99[h],
            study.exclusive_p999[h]
        )
        .unwrap();
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    writeln!(
        out,
        "24h mean | shared {:.2}% / {:.2}%, exclusive {:.2}% / {:.2}%  (paper: shared ~2-4%/2-10%, exclusive ~0.2%/0.5%)",
        avg(&study.shared_p99),
        avg(&study.shared_p999),
        avg(&study.exclusive_p99),
        avg(&study.exclusive_p999)
    )
    .unwrap();
    out
}

/// Renders Table 3: the instance catalog and per-server board limits.
pub fn table3() -> String {
    let mut out = String::new();
    table3_into(&mut out);
    out
}

/// Renders Table 3 into a caller-provided buffer (allocation-free once
/// the buffer is warmed).
pub fn table3_into(out: &mut String) {
    let constraints = ServerConstraints::production();
    writeln!(
        out,
        "Table 3. Bare-metal instances (catalog reconstructed from the text)"
    )
    .unwrap();
    writeln!(
        out,
        "{:<20} | {:<22} | {:>6} | {:>7} | {:>9} | {:>11}",
        "instance", "processor", "HT", "mem GiB", "board W", "max boards"
    )
    .unwrap();
    for inst in INSTANCE_CATALOG {
        writeln!(
            out,
            "{:<20} | {:<22} | {:>6} | {:>7} | {:>9.0} | {:>11}",
            inst.name,
            inst.processor.name,
            inst.threads(),
            inst.memory_gib,
            inst.board_watts(),
            constraints.max_boards(inst)
        )
        .unwrap();
    }
    writeln!(
        out,
        "limits per instance: 4M PPS, 10 Gbit/s, 25K IOPS, 300 MB/s"
    )
    .unwrap();
    telemetry::add_events(INSTANCE_CATALOG.len() as u64);
}

/// Renders Fig. 7: SPEC CINT2006 relative performance.
pub fn fig7() -> String {
    let result = spec::run_spec();
    let mut out = String::new();
    writeln!(
        out,
        "Fig. 7. SPEC CINT2006, normalised to the physical machine (=1.000)"
    )
    .unwrap();
    writeln!(
        out,
        "{:<12} | {:>9} | {:>9}",
        "benchmark", "bm-guest", "vm-guest"
    )
    .unwrap();
    for row in &result.rows {
        writeln!(out, "{:<12} | {:>9.3} | {:>9.3}", row.name, row.bm, row.vm).unwrap();
    }
    writeln!(
        out,
        "{:<12} | {:>9.3} | {:>9.3}   (paper: bm ~ +4%, vm ~ -4%)",
        "geomean", result.bm_geomean, result.vm_geomean
    )
    .unwrap();
    out
}

/// Renders Fig. 8: STREAM bandwidth.
pub fn fig8() -> String {
    let rows = stream::run_stream();
    let mut out = String::new();
    writeln!(out, "Fig. 8. STREAM (200M elements, 16 threads), GB/s").unwrap();
    writeln!(
        out,
        "{:<7} | {:>9} | {:>9} | {:>9}",
        "kernel", "physical", "bm-guest", "vm-guest"
    )
    .unwrap();
    for row in rows {
        writeln!(
            out,
            "{:<7} | {:>9.1} | {:>9.1} | {:>9.1}",
            row.kernel, row.physical, row.bm, row.vm
        )
        .unwrap();
    }
    writeln!(
        out,
        "(paper: bm == physical at the channel limit; vm ~ 98% of bm under load)"
    )
    .unwrap();
    out
}

/// Renders Fig. 9: UDP packet rates.
pub fn fig9(seed: u64) -> String {
    let mut bm = GuestEnv::bm(seed);
    let mut vm = GuestEnv::vm(seed);
    let bm_run = netperf::udp_pps(&mut bm, 20);
    let vm_run = netperf::udp_pps(&mut vm, 20);
    let mut bm_unres = GuestEnv::bm(seed + 1);
    let unrestricted = netperf::udp_pps_unrestricted(&mut bm_unres, 20);
    let mut bm_tp = GuestEnv::bm(seed + 2);
    let mut vm_tp = GuestEnv::vm(seed + 2);
    let bm_gbps = netperf::tcp_throughput(&mut bm_tp);
    let vm_gbps = netperf::tcp_throughput(&mut vm_tp);
    let mut out = String::new();
    writeln!(
        out,
        "Fig. 9. UDP packet receive rate (small packets, 4M PPS cap)"
    )
    .unwrap();
    writeln!(
        out,
        "{:<10} | {:>10} | {:>10} | {:>8}",
        "guest", "mean PPS", "max PPS", "jitter"
    )
    .unwrap();
    for run in [&bm_run, &vm_run] {
        writeln!(
            out,
            "{:<10} | {:>10.3e} | {:>10.3e} | {:>7.2}%",
            run.label,
            run.stats.mean(),
            run.stats.max(),
            run.stats.cv() * 100.0
        )
        .unwrap();
    }
    writeln!(
        out,
        "(paper: both >3.2M PPS; vm slightly better with less jitter)"
    )
    .unwrap();
    writeln!(
        out,
        "unrestricted bm-guest (DPDK, no cap): {:.1}M PPS  (paper: 16M PPS)",
        unrestricted.stats.mean() / 1e6
    )
    .unwrap();
    writeln!(
        out,
        "TCP throughput, 64 conns x 1400B: bm {:.2} Gbit/s, vm {:.2} Gbit/s (paper: 9.6 / 9.59)",
        bm_gbps, vm_gbps
    )
    .unwrap();
    out
}

/// Renders Fig. 10: UDP and ping latency.
pub fn fig10(seed: u64) -> String {
    let mut out = String::new();
    writeln!(out, "Fig. 10. 64B round-trip latency, microseconds").unwrap();
    writeln!(
        out,
        "{:<18} | {:>12} | {:>12} | paper",
        "tool", "bm-guest", "vm-guest"
    )
    .unwrap();
    let notes = [
        "almost the same",
        "vm slightly better (longer bm I/O path)",
        "like the kernel stack",
    ];
    for (tool, note) in LatencyTool::ALL.into_iter().zip(notes) {
        let mut bm = GuestEnv::bm(seed);
        let mut vm = GuestEnv::vm(seed);
        let bm_run = sockperf::round_trip(&mut bm, tool, 10_000);
        let vm_run = sockperf::round_trip(&mut vm, tool, 10_000);
        writeln!(
            out,
            "{:<18} | {:>12.1} | {:>12.1} | {}",
            tool.label(),
            bm_run.rtt_us.mean(),
            vm_run.rtt_us.mean(),
            note
        )
        .unwrap();
    }
    out
}

/// Renders Fig. 11: storage latency.
pub fn fig11(seed: u64) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "Fig. 11. Storage I/O latency (fio, 8 threads, 4KB, 25K IOPS cap), microseconds"
    )
    .unwrap();
    writeln!(
        out,
        "{:<22} | {:>9} | {:>9} | {:>9} | {:>9}",
        "workload/guest", "mean", "p99", "p99.9", "IOPS"
    )
    .unwrap();
    for kind in [IoKind::Read, IoKind::Write] {
        let kind_name = match kind {
            IoKind::Read => "rand-read",
            IoKind::Write => "rand-write",
        };
        let mut bm = GuestEnv::bm(seed);
        let mut vm = GuestEnv::vm(seed);
        for run in [
            fio::fio_cloud(&mut bm, kind, 50_000),
            fio::fio_cloud(&mut vm, kind, 50_000),
        ] {
            writeln!(
                out,
                "{:<22} | {:>9.1} | {:>9.1} | {:>9.1} | {:>9.0}",
                format!("{kind_name}/{}", run.label),
                run.latency_us.mean(),
                run.latency_us.percentile(99.0),
                run.latency_us.percentile(99.9),
                run.iops
            )
            .unwrap();
        }
    }
    writeln!(
        out,
        "(paper: bm ~25% faster mean, ~3x faster p99.9 for random read)"
    )
    .unwrap();
    let mut bm = GuestEnv::bm(seed + 1);
    let mut vm = GuestEnv::vm(seed + 1);
    let bm_local = fio::fio_local_unrestricted(&mut bm, IoKind::Read, 40_000);
    let vm_local = fio::fio_local_unrestricted(&mut vm, IoKind::Read, 40_000);
    let mut bm2 = GuestEnv::bm(seed + 2);
    let mut vm2 = GuestEnv::vm(seed + 2);
    let bm_bw = fio::fio_local_bandwidth(&mut bm2, 5_000);
    let vm_bw = fio::fio_local_bandwidth(&mut vm2, 5_000);
    writeln!(
        out,
        "unrestricted local SSD: bm {:.0} us mean / {:.0} IOPS / {:.0} MB/s; vm {:.0} us / {:.0} IOPS / {:.0} MB/s",
        bm_local.latency_us.mean(),
        bm_local.iops,
        bm_bw.bandwidth_mbs,
        vm_local.latency_us.mean(),
        vm_local.iops,
        vm_bw.bandwidth_mbs
    )
    .unwrap();
    writeln!(
        out,
        "(paper: bm 60us average; +50% IOPS and +100% bandwidth over vm)"
    )
    .unwrap();
    out
}

/// Renders Fig. 12: NGINX.
pub fn fig12(seed: u64) -> String {
    let mut bm = GuestEnv::bm(seed);
    let mut vm = GuestEnv::vm(seed);
    let bm_run = nginx::run_nginx(&mut bm, &nginx::CLIENT_SWEEP);
    let vm_run = nginx::run_nginx(&mut vm, &nginx::CLIENT_SWEEP);
    let mut out = String::new();
    writeln!(out, "Fig. 12. NGINX requests/second (ab, KeepAlive off)").unwrap();
    writeln!(
        out,
        "{:>8} | {:>12} | {:>12} | {:>7} | {:>11} | {:>11}",
        "clients", "bm RPS", "vm RPS", "ratio", "bm resp ms", "vm resp ms"
    )
    .unwrap();
    for ((c, bm_rps), (_, vm_rps)) in bm_run.rps.points().iter().zip(vm_run.rps.points()) {
        let bm_ms = bm_run
            .response_ms
            .points()
            .iter()
            .find(|(x, _)| x == c)
            .unwrap()
            .1;
        let vm_ms = vm_run
            .response_ms
            .points()
            .iter()
            .find(|(x, _)| x == c)
            .unwrap()
            .1;
        writeln!(
            out,
            "{:>8.0} | {:>12.0} | {:>12.0} | {:>6.2}x | {:>11.2} | {:>11.2}",
            c,
            bm_rps,
            vm_rps,
            bm_rps / vm_rps,
            bm_ms,
            vm_ms
        )
        .unwrap();
    }
    writeln!(
        out,
        "(paper: bm serves 50-60% more RPS; ~30% shorter response time)"
    )
    .unwrap();
    out
}

/// Renders Fig. 13: MariaDB read-only.
pub fn fig13(seed: u64) -> String {
    let mut bm = GuestEnv::bm(seed);
    let mut vm = GuestEnv::vm(seed);
    let bm_run = mariadb::run_mariadb(&mut bm, mariadb::QueryMix::ReadOnly);
    let vm_run = mariadb::run_mariadb(&mut vm, mariadb::QueryMix::ReadOnly);
    let mut out = String::new();
    writeln!(
        out,
        "Fig. 13. MariaDB read-only (sysbench, 16 tables x 1M rows, 128 threads)"
    )
    .unwrap();
    writeln!(
        out,
        "bm-guest {:.0} QPS, vm-guest {:.0} QPS -> bm +{:.1}%  (paper: 195K vs 170K, +14.7%)",
        bm_run.qps,
        vm_run.qps,
        (bm_run.qps / vm_run.qps - 1.0) * 100.0
    )
    .unwrap();
    out
}

/// Renders Fig. 14: MariaDB write-only and read/write.
pub fn fig14(seed: u64) -> String {
    let mut out = String::new();
    writeln!(out, "Fig. 14. MariaDB write-only and read/write mixed").unwrap();
    for (mix, paper) in [
        (mariadb::QueryMix::WriteOnly, "+42%"),
        (mariadb::QueryMix::ReadWrite, "+55%"),
    ] {
        let mut bm = GuestEnv::bm(seed);
        let mut vm = GuestEnv::vm(seed);
        let bm_run = mariadb::run_mariadb(&mut bm, mix);
        let vm_run = mariadb::run_mariadb(&mut vm, mix);
        writeln!(
            out,
            "{:<11} bm {:.0} QPS, vm {:.0} QPS -> bm +{:.1}%  (paper: {paper})",
            mix.label(),
            bm_run.qps,
            vm_run.qps,
            (bm_run.qps / vm_run.qps - 1.0) * 100.0
        )
        .unwrap();
    }
    out
}

/// Renders Fig. 15: Redis versus client count.
pub fn fig15(seed: u64) -> String {
    let mut bm = GuestEnv::bm(seed);
    let mut vm = GuestEnv::vm(seed);
    let bm_s = redis::run_redis_clients(&mut bm, &redis::CLIENT_SWEEP, 64);
    let vm_s = redis::run_redis_clients(&mut vm, &redis::CLIENT_SWEEP, 64);
    let mut out = String::new();
    writeln!(
        out,
        "Fig. 15. Redis requests/second vs clients (64B values)"
    )
    .unwrap();
    writeln!(
        out,
        "{:>8} | {:>10} | {:>10} | {:>7}",
        "clients", "bm RPS", "vm RPS", "ratio"
    )
    .unwrap();
    for ((c, b), (_, v)) in bm_s.points().iter().zip(vm_s.points()) {
        writeln!(
            out,
            "{:>8.0} | {:>10.0} | {:>10.0} | {:>6.2}x",
            c,
            b,
            v,
            b / v
        )
        .unwrap();
    }
    writeln!(out, "(paper: bm 20-40% better)").unwrap();
    out
}

/// Renders Fig. 16: Redis versus value size, with stability.
pub fn fig16(seed: u64) -> String {
    let mut bm = GuestEnv::bm(seed);
    let mut vm = GuestEnv::vm(seed);
    let bm_runs = redis::run_redis_sizes(&mut bm, &redis::SIZE_SWEEP, 20);
    let vm_runs = redis::run_redis_sizes(&mut vm, &redis::SIZE_SWEEP, 20);
    let mut out = String::new();
    writeln!(
        out,
        "Fig. 16. Redis requests/second vs value size (4000 clients)"
    )
    .unwrap();
    writeln!(
        out,
        "{:>7} | {:>10} {:>8} | {:>10} {:>8}",
        "size B", "bm RPS", "bm CV", "vm RPS", "vm CV"
    )
    .unwrap();
    for ((size, bm_s), (_, vm_s)) in bm_runs.iter().zip(&vm_runs) {
        let cv = |s: &bmhive_sim::Series| {
            let mut sum = bmhive_sim::Summary::new();
            for y in s.ys() {
                sum.record(y);
            }
            sum.cv() * 100.0
        };
        writeln!(
            out,
            "{:>7} | {:>10.0} {:>7.1}% | {:>10.0} {:>7.1}%",
            size,
            bm_s.mean_y(),
            cv(bm_s),
            vm_s.mean_y(),
            cv(vm_s)
        )
        .unwrap();
    }
    writeln!(out, "(paper: bm higher and stable; vm fluctuates)").unwrap();
    out
}

/// Renders the §3.5 cost-efficiency analysis.
pub fn cost() -> String {
    let mut out = String::new();
    cost_into(&mut out);
    out
}

/// Renders the cost analysis into a caller-provided buffer
/// (allocation-free once the buffer is warmed).
pub fn cost_into(out: &mut String) {
    let model = CostModel::paper();
    writeln!(out, "§3.5 Cost efficiency").unwrap();
    writeln!(
        out,
        "{:<38} | {:>8} | {:>10} | {:>9} | {:>9}",
        "configuration", "total HT", "sellable HT", "W/vCPU", "rel price"
    )
    .unwrap();
    for report in [
        model.vm_server(),
        model.bm_hive_eight_boards(),
        model.bm_hive_single_board(),
    ] {
        writeln!(
            out,
            "{:<38} | {:>8} | {:>11} | {:>9.2} | {:>8.0}%",
            report.label,
            report.total_threads,
            report.sellable_threads,
            report.watts_per_vcpu(),
            report.price_per_vcpu * 100.0
        )
        .unwrap();
    }
    writeln!(
        out,
        "density advantage {:.2}x  (paper: 256HT vs 88HT; 3.17 vs 3.06 W/vCPU; bm price -10%)",
        model.density_advantage()
    )
    .unwrap();
    telemetry::add_events(3);
}

/// Renders the §2.3 nested-virtualization comparison.
pub fn nested() -> String {
    let mut out = String::new();
    nested_into(&mut out);
    out
}

/// Renders the nested-virtualization comparison into a caller-provided
/// buffer (allocation-free once the buffer is warmed).
pub fn nested_into(out: &mut String) {
    let model = NestedVirtModel::kvm_on_kvm();
    writeln!(
        out,
        "§2.3 Nested hypervisor performance (relative to native)"
    )
    .unwrap();
    writeln!(
        out,
        "CPU-bound nested guest:  {:.0}%  (paper: ~80%)",
        model.cpu_relative() * 100.0
    )
    .unwrap();
    writeln!(
        out,
        "I/O-bound nested guest:  {:.0}%  (paper: ~25%)",
        model.io_relative() * 100.0
    )
    .unwrap();
    writeln!(
        out,
        "user hypervisor on BM-Hive: {:.0}% (native hardware virtualization)",
        model.bm_hive_relative() * 100.0
    )
    .unwrap();
    telemetry::add_events(3);
}

/// Renders the §3.4.3 IO-Bond microbenchmarks and the Fig. 6 step
/// budget.
pub fn iobond() -> String {
    let mut out = String::new();
    iobond_into(&mut out);
    out
}

/// Renders the IO-Bond microbenchmarks into a caller-provided buffer.
pub fn iobond_into(out: &mut String) {
    let profile = IoBondProfile::fpga();
    writeln!(out, "§3.4.3 IO-Bond microbenchmarks (FPGA profile)").unwrap();
    writeln!(
        out,
        "guest PCI register access: {}  (paper: 0.8us)",
        profile.guest_register_access()
    )
    .unwrap();
    writeln!(
        out,
        "emulated PCI access (guest+mailbox): {}  (paper: 1.6us constant)",
        profile.emulated_pci_access()
    )
    .unwrap();
    writeln!(
        out,
        "internal DMA: {:.0} Gbit/s  (paper: ~50 Gbps)",
        profile.dma().bandwidth_gbps()
    )
    .unwrap();
    writeln!(
        out,
        "links: x4 per device = {:.1} Gbit/s, x8 to base = {:.1} Gbit/s  (paper: 32 / backing x8)",
        profile.guest_link().bandwidth_gbps(),
        profile.base_link().bandwidth_gbps()
    )
    .unwrap();
    writeln!(out, "\nFig. 6: the 14-step Tx/Rx exchange (64B payloads)").unwrap();
    let steps = steps::tx_rx_steps(&profile, 64, 64);
    // One reused scratch String for the padded actor column instead of
    // a format! per step.
    let mut actor = String::new();
    for step in &steps {
        actor.clear();
        write!(actor, "{:?}", step.actor).unwrap();
        writeln!(
            out,
            "  {:>2}. [{actor:<7}] {:<58} {}",
            step.number, step.description, step.cost
        )
        .unwrap();
    }
    // trace_exchange records the exchange (and its 14 step spans) into
    // the global trace when `repro --trace` enabled telemetry; its
    // return value is the same step sum printed above.
    let total = steps::trace_exchange(&profile, 64, 64, bmhive_sim::SimTime::ZERO);
    debug_assert_eq!(total, steps::total_latency(&steps));
    writeln!(out, "  total: {}", total).unwrap();
    writeln!(
        out,
        "  closed-form model total: {}  (must match)",
        steps::modelled_exchange_latency(&profile, 64, 64)
    )
    .unwrap();
}

/// Renders the §6 ASIC projection ablation.
pub fn asic() -> String {
    let mut out = String::new();
    asic_into(&mut out);
    out
}

/// Renders the ASIC projection into a caller-provided buffer
/// (allocation-free once the buffer is warmed).
pub fn asic_into(out: &mut String) {
    let fpga = IoBondProfile::fpga();
    let asic = IoBondProfile::asic();
    writeln!(out, "§6 ASIC projection (ablation)").unwrap();
    writeln!(
        out,
        "register access: fpga {} -> asic {}  (paper: 0.8us -> 0.2us, -75%)",
        fpga.guest_register_access(),
        asic.guest_register_access()
    )
    .unwrap();
    // The closed-form model equals the materialized step sum by
    // construction (the integration suite cross-checks), and it
    // doesn't allocate the step vector.
    let fpga_total = steps::modelled_exchange_latency(&fpga, 64, 64);
    let asic_total = steps::modelled_exchange_latency(&asic, 64, 64);
    writeln!(
        out,
        "Fig. 6 exchange: fpga {} -> asic {}",
        fpga_total, asic_total
    )
    .unwrap();
    let fpga_path = IoPath::bm(fpga, 1);
    let asic_path = IoPath::bm(asic, 1);
    writeln!(
        out,
        "one-way 64B path: fpga {} -> asic {}",
        fpga_path.net_oneway(64),
        asic_path.net_oneway(64)
    )
    .unwrap();
    writeln!(
        out,
        "kernel-stack PPS ceiling: fpga {:.2}M -> asic {:.2}M",
        fpga_path.max_pps_kernel() / 1e6,
        asic_path.max_pps_kernel() / 1e6
    )
    .unwrap();
    telemetry::add_events(4);
}

/// Renders the §6 IO-Bond offload plan and the §3.4.2 slow-path
/// comparison (ablations).
pub fn offload() -> String {
    let mut out = String::new();
    offload_into(&mut out);
    out
}

/// Renders the offload/slow-path ablation into a caller-provided
/// buffer (allocation-free once the buffer is warmed).
pub fn offload_into(out: &mut String) {
    use bmhive_hypervisor::NetBackendPath;
    use bmhive_iobond::OffloadConfig;
    writeln!(out, "§6 IO-Bond packet-processing offload (ablation)").unwrap();
    writeln!(
        out,
        "{:<22} | {:>14} | {:>14} | {:>22}",
        "configuration", "sw ns/packet", "hw added ns", "base cores @16x1M PPS"
    )
    .unwrap();
    for (label, cfg) in [
        ("deployed (none)", OffloadConfig::deployed()),
        ("full offload", OffloadConfig::full()),
    ] {
        writeln!(
            out,
            "{:<22} | {:>14} | {:>14} | {:>22}",
            label,
            cfg.sw_per_packet().as_nanos(),
            cfg.hw_added_latency().as_nanos(),
            cfg.base_cores_needed(16, 1e6)
        )
        .unwrap();
    }
    writeln!(
        out,
        "(paper: offload packet processing so lower-cost base CPUs can be used)"
    )
    .unwrap();
    writeln!(out, "\n§3.4.2 backend mode (PMD vs interrupt, batch 4)").unwrap();
    for mode in bmhive_hypervisor::BackendMode::ALL {
        writeln!(
            out,
            "{:?}: detect {}, +{} per request, idle core burn {:.0}%",
            mode,
            mode.detection_latency(),
            mode.per_request_cpu(4),
            mode.idle_burn_fraction() * 100.0
        )
        .unwrap();
    }
    writeln!(out, "\n§3.4.2 slow test paths (never deployed)").unwrap();
    for path in [NetBackendPath::DpdkFast, NetBackendPath::LinuxTap] {
        writeln!(
            out,
            "{:?}: {:.2}M PPS/core, +{} latency, reaches cloud services: {}",
            path,
            path.max_pps_per_core() / 1e6,
            path.added_latency(),
            path.reaches_cloud_services()
        )
        .unwrap();
    }
    telemetry::add_events(2 + bmhive_hypervisor::BackendMode::ALL.len() as u64 + 2);
}

/// Renders the §6 SGX comparison.
pub fn sgx() -> String {
    let mut out = String::new();
    sgx_into(&mut out);
    out
}

/// Renders the SGX comparison into a caller-provided buffer
/// (allocation-free once the buffer is warmed).
pub fn sgx_into(out: &mut String) {
    use bmhive_cpu::catalog::XEON_E5_2682_V4;
    use bmhive_cpu::sgx::{EnclaveWorkload, SgxModel, SgxSupport};
    use bmhive_cpu::Platform;
    let model = SgxModel::sgx1();
    let workload = EnclaveWorkload::trading_engine();
    let bm = Platform::bm_guest(XEON_E5_2682_V4);
    let vm = Platform::vm_guest(XEON_E5_2682_V4);
    writeln!(
        out,
        "§6 SGX support (trading-engine enclave, 120K transitions/s)"
    )
    .unwrap();
    // Writes each row straight into the buffer — no per-row String.
    fn row(out: &mut String, label: &str, s: Option<f64>) {
        match s {
            Some(f) => {
                writeln!(out, "{label}{:.1}% of a core in SGX machinery", f * 100.0).unwrap()
            }
            None => writeln!(out, "{label}cannot launch (no special builds)").unwrap(),
        }
    }
    row(
        out,
        "bm-guest (native SGX):          ",
        model.overhead_fraction(&workload, model.support_on(&bm)),
    );
    row(
        out,
        "vm-guest (stock KVM/QEMU):      ",
        model.overhead_fraction(&workload, model.support_on(&vm)),
    );
    row(
        out,
        "vm-guest (special SGX builds):  ",
        model.overhead_fraction(
            &workload,
            SgxSupport::Virtualized {
                special_builds_installed: true,
            },
        ),
    );
    writeln!(
        out,
        "(paper: SGX 'does not work well in virtual machines'; BM-Hive runs it natively)"
    )
    .unwrap();
    telemetry::add_events(3);
}

/// Renders the §1/§2.1 motivation workload: high-frequency trading
/// order-to-wire tails.
pub fn trading(seed: u64) -> String {
    use bmhive_workloads::trading::{run_trading, FILL_BUDGET};
    let mut bm = GuestEnv::bm(seed);
    let mut vm = GuestEnv::vm(seed);
    let bm_run = run_trading(&mut bm, 100_000);
    let vm_run = run_trading(&mut vm, 100_000);
    let mut out = String::new();
    writeln!(
        out,
        "§1/§2.1 motivation: high-frequency trading (100K ticks, {} fill budget)",
        FILL_BUDGET
    )
    .unwrap();
    writeln!(
        out,
        "{:<10} | {:>10} | {:>10} | {:>10} | {:>12}",
        "guest", "p50 us", "p99 us", "p99.9 us", "missed fills"
    )
    .unwrap();
    for run in [&bm_run, &vm_run] {
        writeln!(
            out,
            "{:<10} | {:>10.1} | {:>10.1} | {:>10.1} | {:>12}",
            run.label,
            run.order_latency_us.percentile(50.0),
            run.order_latency_us.percentile(99.0),
            run.order_latency_us.percentile(99.9),
            run.missed_fills
        )
        .unwrap();
    }
    writeln!(
        out,
        "(paper: preemption 'can cause real problems for demanding services, such as high-frequency stock trading')"
    )
    .unwrap();
    out
}

/// Renders the fault-injection & recovery experiment: one bm-guest
/// driven through ~2 ms of virtual time — sends, ingress deliveries,
/// vSwitch forwarding, block reads, MMIO polls — while the armed
/// [`bmhive_faults`] plan (if any) injects faults and the recovery
/// paths absorb them. With no plan armed it renders the clean
/// baseline; the canned plans' windows (200–950 µs) all land inside
/// the driven horizon.
pub fn faults(seed: u64) -> String {
    use bmhive_cloud::blockstore::{BlockStore, StorageClass};
    use bmhive_cloud::limits::InstanceLimits;
    use bmhive_cloud::vswitch::{Forwarded, PortId, VSwitch};
    use bmhive_hypervisor::BmGuestSession;
    use bmhive_net::{MacAddr, PacketKind};
    use bmhive_sim::{Histogram, SimDuration, SimTime};
    use bmhive_virtio::BlkRequestType;

    let mut out = String::new();
    writeln!(
        out,
        "Fault injection: bm-guest I/O under plan '{}'",
        bmhive_faults::armed_plan_name().unwrap_or_else(|| "none (clean baseline)".into())
    )
    .unwrap();

    let mut session = BmGuestSession::new(
        IoBondProfile::fpga(),
        MacAddr::for_guest(1),
        64,
        InstanceLimits::unrestricted(),
    );
    let mut sw = VSwitch::new(2);
    sw.attach(MacAddr::for_guest(1), PortId(1));
    sw.attach(MacAddr::for_guest(2), PortId(2));
    let mut store = BlockStore::new(StorageClass::CloudSsd, seed);

    let think = SimDuration::from_micros(10);
    let mut t = SimTime::ZERO;
    let mut lat = Histogram::new();
    let mut board_resets = 0u64;
    let mut replayed = 0u64;
    let mut switch_shed = 0u64;
    for i in 0..150u64 {
        if let Some(outage) = session.poll_faults(t).expect("board recovery") {
            board_resets += 1;
            replayed += outage.replayed_chains;
            t = outage.recovered_at;
        }
        // One MMIO status poll per round rides the guest PCIe link —
        // where link flaps and hop-latency spikes strike.
        t += session.profile().guest_link().register_access_at(t);
        let (egress, timing) = session
            .net_send(MacAddr::for_guest(2), PacketKind::Udp, b"fault-probe", t)
            .expect("net send");
        if matches!(sw.forward(&egress.packet, egress.at), Forwarded::Dropped) {
            switch_shed += 1;
        }
        lat.record_duration(timing.latency());
        t = timing.completed;
        let (_, timing) = session.net_receive(b"pong", t).expect("net receive");
        t = timing.completed;
        if i % 5 == 0 {
            // Issued async: the guest never blocks on the ~150 µs
            // store latency, so the poll cadence stays dense enough
            // that every canned fault window gets hit.
            session
                .blk_request(&mut store, BlkRequestType::In, i * 8, &[], 4096, t)
                .expect("blk read");
        }
        t += think;
    }
    let (tx, rx, io) = session.counters();
    writeln!(
        out,
        "{:<14} | {:>8} | {:>8} | {:>8}",
        "ops completed", "net tx", "net rx", "blk"
    )
    .unwrap();
    writeln!(out, "{:<14} | {tx:>8} | {rx:>8} | {io:>8}", "").unwrap();
    writeln!(
        out,
        "net send latency: mean {:.2} us, p99 {:.2} us",
        lat.mean(),
        lat.percentile(99.0)
    )
    .unwrap();
    writeln!(
        out,
        "virtual horizon {t}; vswitch shed {switch_shed}; board resets {board_resets}; chains replayed {replayed}"
    )
    .unwrap();
    match bmhive_faults::stats() {
        Some(stats) => {
            writeln!(out, "-- fault engine --").unwrap();
            out.push_str(&stats.to_text());
        }
        None => writeln!(out, "fault engine: disarmed (clean run)").unwrap(),
    }
    out
}

/// Renders the open-loop traffic policy comparison: one pool of
/// bm-guests behind the vSwitch, offered Poisson load at three
/// utilizations, under every dispatch policy the traffic front-end
/// implements. The cloning row is validated against the PS-cloning
/// closed form (`bmhive_workloads::openloop`) at low load, where the
/// synchronized-pair model is exact, and a bursty MMPP coda shows why
/// depth-aware placement earns its probes.
pub fn traffic_policies(seed: u64) -> String {
    use bmhive_sim::SimDuration;
    use bmhive_traffic::{ArrivalModel, DispatchMode, Policy, TrafficConfig};
    use bmhive_workloads::openloop::{ps_cloned_mean_response, ServiceTime};

    const GUESTS: usize = 8;
    const REQUESTS: u64 = 4_000;
    let service = ServiceTime::web_tier();
    let net_hop = SimDuration::from_micros(2);
    // Client↔guest constant outside the PS servers: one switch
    // traversal plus the wire each way.
    let net_const = bmhive_cloud::vswitch::VSwitch::DEFAULT_PER_PACKET + net_hop + net_hop;
    let rate_at = |rho: f64| rho * GUESTS as f64 / service.mean().as_secs_f64();
    let modes = [
        DispatchMode::Single(Policy::RoundRobin),
        DispatchMode::Single(Policy::LeastLoaded),
        DispatchMode::Single(Policy::PowerOfTwo),
        DispatchMode::Clone,
        DispatchMode::Hedge {
            policy: Policy::PowerOfTwo,
            delay: service.p95(),
        },
    ];

    let mut out = String::new();
    writeln!(
        out,
        "Open-loop traffic: {GUESTS} bm-guests, Poisson arrivals, exp({}) service, {REQUESTS} requests/cell",
        service.mean()
    )
    .unwrap();
    writeln!(
        out,
        "{:<5} | {:<13} | {:>8} | {:>8} | {:>9} | {:>5} | {:>6}",
        "load", "policy", "p50 us", "p99 us", "p99.9 us", "drops", "hedges"
    )
    .unwrap();
    let mut clone_low_load_mean = 0.0;
    for rho in [0.25, 0.55, 0.85] {
        for mode in modes {
            let cfg = TrafficConfig {
                guests: GUESTS,
                pmd_cores: 2,
                service,
                arrivals: ArrivalModel::Poisson {
                    rate_rps: rate_at(rho),
                },
                requests: REQUESTS,
                net_hop,
                mode,
                outage: None,
            };
            let report = bmhive_traffic::run(&cfg, seed);
            if rho == 0.25 && mode == DispatchMode::Clone {
                clone_low_load_mean = report.latency.mean();
            }
            writeln!(
                out,
                "{rho:<5} | {:<13} | {:>8.1} | {:>8.1} | {:>9.1} | {:>5} | {:>6}",
                report.label,
                report.latency.percentile(50.0),
                report.latency.percentile(99.0),
                report.latency.percentile(99.9),
                report.dropped,
                report.hedge_fired,
            )
            .unwrap();
        }
    }
    // At rho = 0.25 the synchronized pair is exactly a PS server with
    // demand min(X1, X2): E[T] = E[Xmin]/(1 - rho) + network constant.
    let model = (ps_cloned_mean_response(&service, 0.25) + net_const).as_micros_f64();
    let err = (clone_low_load_mean - model).abs() / model;
    writeln!(
        out,
        "cloning vs PS closed form @ rho=0.25: measured {clone_low_load_mean:.1} us, model {model:.1} us, err {:.1}% -> {}",
        err * 100.0,
        if err < 0.10 { "PASS" } else { "FAIL" }
    )
    .unwrap();
    // Bursty arrivals (same mean rate as rho = 0.55): oblivious
    // round-robin eats the burst tail; two depth probes dodge it.
    let burst = |mode| {
        let cfg = TrafficConfig {
            guests: GUESTS,
            pmd_cores: 2,
            service,
            arrivals: ArrivalModel::Mmpp {
                on_rps: rate_at(0.85),
                off_rps: rate_at(0.25),
                mean_dwell: SimDuration::from_millis(2),
            },
            requests: REQUESTS,
            net_hop,
            mode,
            outage: None,
        };
        bmhive_traffic::run(&cfg, seed)
    };
    let rr = burst(DispatchMode::Single(Policy::RoundRobin));
    let po2 = burst(DispatchMode::Single(Policy::PowerOfTwo));
    writeln!(
        out,
        "burst (MMPP 0.85/0.25, 2ms dwell): rr p99.9 {:.1} us, po2 p99.9 {:.1} us",
        rr.latency.percentile(99.9),
        po2.latency.percentile(99.9),
    )
    .unwrap();
    out
}

/// Renders the traffic isolation experiment: a board power-loss (the
/// canned `board-loss` plan's event, scaled ×100 to datacenter
/// milliseconds) freezes one bm-guest mid-run while open-loop traffic
/// keeps arriving. Gates: the neighbours' p99 must not move (the §3
/// isolation claim — one tenant's board dying is invisible to the
/// others), and hedging must cut the victim's fault-window tail.
pub fn traffic_isolation(seed: u64) -> String {
    use bmhive_sim::{SimDuration, SimTime};
    use bmhive_traffic::{ArrivalModel, DispatchMode, Outage, Policy, TrafficConfig};
    use bmhive_workloads::openloop::ServiceTime;

    const GUESTS: usize = 4;
    const REQUESTS: u64 = 6_000;
    const SCALE: u64 = 100;
    let service = ServiceTime::web_tier();
    // The canned plan's board power-loss, stretched from its ~µs test
    // scale to the milliseconds a real board reset takes.
    let plan = bmhive_faults::board_loss();
    let ev = plan.events()[0];
    let outage = Outage {
        guest: 0,
        at: SimTime::from_nanos(ev.at.as_nanos() * SCALE),
        lasts: SimDuration::from_nanos(ev.duration.as_nanos() * SCALE),
    };
    let rho = 0.55;
    let base = |mode, outage| TrafficConfig {
        guests: GUESTS,
        pmd_cores: 2,
        service,
        arrivals: ArrivalModel::Poisson {
            rate_rps: rho * GUESTS as f64 / service.mean().as_secs_f64(),
        },
        requests: REQUESTS,
        net_hop: SimDuration::from_micros(2),
        mode,
        outage,
    };
    let rr = DispatchMode::Single(Policy::RoundRobin);
    let hedge = DispatchMode::Hedge {
        policy: Policy::RoundRobin,
        delay: service.p95(),
    };
    let clean = bmhive_traffic::run(&base(rr, None), seed);
    let faulted = bmhive_traffic::run(&base(rr, Some(outage)), seed);
    let hedged = bmhive_traffic::run(&base(hedge, Some(outage)), seed);

    let mut out = String::new();
    writeln!(
        out,
        "Traffic isolation: board power-loss on guest 0 (plan '{}' x{SCALE}: at {} for {})",
        plan.name, outage.at, outage.lasts
    )
    .unwrap();
    writeln!(
        out,
        "{GUESTS} bm-guests, rr dispatch, rho {rho}, {REQUESTS} requests/pass"
    )
    .unwrap();
    writeln!(
        out,
        "{:<13} | {:>8} | {:>9} | {:>15}",
        "pass", "p99 us", "p99.9 us", "window p99.9 us"
    )
    .unwrap();
    for (label, report) in [
        ("clean", &clean),
        ("faulted", &faulted),
        ("faulted+hedge", &hedged),
    ] {
        writeln!(
            out,
            "{label:<13} | {:>8.1} | {:>9.1} | {:>15.1}",
            report.latency.percentile(99.0),
            report.latency.percentile(99.9),
            report.window.percentile(99.9),
        )
        .unwrap();
    }
    // Gate 1: neighbours are unperturbed. Open-loop arrivals plus
    // round-robin mean the neighbour event streams are identical with
    // and without the outage, so the ratio should be exactly 1.
    let mut worst = 0.0f64;
    let mut ratios = String::new();
    for g in 1..GUESTS {
        let ratio = faulted.per_guest[g].percentile(99.0) / clean.per_guest[g].percentile(99.0);
        worst = worst.max(ratio);
        if g > 1 {
            ratios.push_str(", ");
        }
        ratios.push_str(&format!("g{g} {ratio:.3}"));
    }
    writeln!(
        out,
        "neighbour p99 ratio (faulted/clean): {ratios} (tol 1.25) -> {}",
        if worst <= 1.25 { "PASS" } else { "FAIL" }
    )
    .unwrap();
    // Gate 2: hedging rescues the fault window. Victim-bound requests
    // clone to a live neighbour after ~p95 instead of waiting out the
    // outage.
    let unhedged_tail = faulted.window.percentile(99.9);
    let hedged_tail = hedged.window.percentile(99.9);
    writeln!(
        out,
        "hedging cuts fault-window p99.9: {unhedged_tail:.1} -> {hedged_tail:.1} us ({} hedges fired) -> {}",
        hedged.hedge_fired,
        if hedged_tail < unhedged_tail { "PASS" } else { "FAIL" }
    )
    .unwrap();
    out
}

/// Renders the fleet-scale study: the §2 exit-rate census run as a
/// *host-sharded stream* at 10 000, 100 000, and 1 000 000 guests
/// (1, 10, and 100 hosts of 10 000 guests each), proving the census
/// costs O(1) memory per worker in guest count while staying exactly
/// equal to a materialized fold of the same draws.
///
/// The per-host censuses fan out across [`par::run_hosts`] — host `h`
/// draws from a stream derived purely from `h`, so the report is
/// byte-identical at every `--jobs` width — and merge in host-index
/// order. Peak-allocation columns are a peak-RSS proxy metered by the
/// [`telemetry::alloc::CountingAlloc`] thread-local counters *inside
/// each worker*; they read `n/a` (and the memory gate reports
/// `SKIPPED`) when the counting allocator is not installed as
/// `#[global_allocator]` — the `repro` binary installs it. The metered
/// closures are deliberately telemetry-free so the printed byte counts
/// are deterministic.
pub fn fleet_scale(seed: u64) -> String {
    const THRESHOLDS: [f64; 3] = [10_000.0, 50_000.0, 100_000.0];
    const GUESTS_PER_HOST: u64 = 10_000;
    const HOST_SCALES: [usize; 3] = [1, 10, 100];
    const BASE: u64 = GUESTS_PER_HOST;
    /// Memory-gate slack: the worst per-worker peak of the 100-host
    /// (1M-guest) census may exceed the single-host one by at most
    /// this much before the O(1)-per-worker claim fails.
    const SLACK_BYTES: u64 = 64 * 1024;

    let metered = telemetry::alloc::installed();
    let fmt_peak = |peak: u64| {
        if metered {
            format!("{peak} B")
        } else {
            "n/a".to_string()
        }
    };

    // The materialized reference: drain host 0's stream into a Vec for
    // exact quickselect percentiles (only feasible at the base scale).
    let host0_stream = par::host_stream(ExitRateStream::CENSUS_STREAM, 0);
    let (rates, materialized_peak) = telemetry::alloc::measure_peak(|| {
        ExitRateStream::production_on(seed, host0_stream)
            .take(BASE as usize)
            .collect::<Vec<f64>>()
    });
    let mut by_hand = ExitCensus::new(&THRESHOLDS);
    for &rate in &rates {
        by_hand.observe(rate);
    }

    // One host's shard of the census, metered on the worker that runs
    // it. Chunked bulk draws — same rates, same order as the iterator;
    // the fixed 8 KiB scratch is part of the metered footprint and
    // identical on every host, so the O(1)-per-worker memory claim the
    // gate checks is untouched. Telemetry happens outside the
    // measurement window (registry writes allocate).
    let census_host = |host: usize| {
        let stream_sel = par::host_stream(ExitRateStream::CENSUS_STREAM, host);
        let (census, peak) = telemetry::alloc::measure_peak(|| {
            let mut census = ExitCensus::new(&THRESHOLDS);
            let mut stream = ExitRateStream::production_on(seed, stream_sel);
            let mut chunk = [0.0f64; 1024];
            let mut left = GUESTS_PER_HOST as usize;
            while left > 0 {
                let take = left.min(chunk.len());
                stream.fill(&mut chunk[..take]);
                for &rate in &chunk[..take] {
                    census.observe(rate);
                }
                left -= take;
            }
            census
        });
        telemetry::add_events(GUESTS_PER_HOST);
        telemetry::counter("fleet.guests_censused", GUESTS_PER_HOST);
        telemetry::gauge_max("fleet.census_peak_alloc_bytes", peak as f64);
        (census, peak)
    };

    // Each scale fans its hosts across the worker pool and folds the
    // shards back in host-index order.
    let mut runs: Vec<(u64, usize, ExitCensus, u64)> = Vec::new();
    for &hosts in &HOST_SCALES {
        let shards = par::run_hosts(hosts, seed, census_host);
        let mut census = ExitCensus::new(&THRESHOLDS);
        let mut worst_peak = 0u64;
        for (shard, peak) in &shards {
            census.merge(shard);
            worst_peak = worst_peak.max(*peak);
        }
        runs.push((hosts as u64 * GUESTS_PER_HOST, hosts, census, worst_peak));
    }

    let mut out = String::new();
    writeln!(
        out,
        "Fleet scale: host-sharded streaming exit-rate census, {}..{} guests ({} guests/host, seed {seed})",
        runs[0].0,
        runs[runs.len() - 1].0,
        GUESTS_PER_HOST
    )
    .unwrap();
    writeln!(
        out,
        "{:>9} | {:>5} | {:>7} | {:>7} | {:>7} | {:>8} | {:>8} | {:>8} | {:>12}",
        "guests", "hosts", ">10K %", ">50K %", ">100K %", "p50", "p99", "p99.9", "worker peak"
    )
    .unwrap();
    for (n, hosts, census, peak) in &runs {
        let rows = census.rows();
        writeln!(
            out,
            "{n:>9} | {hosts:>5} | {:>7.3} | {:>7.3} | {:>7.3} | {:>8.0} | {:>8.0} | {:>8.0} | {:>12}",
            rows[0].1,
            rows[1].1,
            rows[2].1,
            census.rate_percentile(50.0),
            census.rate_percentile(99.0),
            census.rate_percentile(99.9),
            fmt_peak(*peak),
        )
        .unwrap();
    }
    writeln!(
        out,
        "materialized {BASE}-guest reference peak: {}",
        fmt_peak(materialized_peak)
    )
    .unwrap();

    // Gate 1: a host's streaming census is *exactly* a fold of its
    // stream — same draws, same counts, same histogram, bit for bit.
    let base_census = &runs[0].2;
    let fold_exact = by_hand.rows() == base_census.rows()
        && by_hand.total() == base_census.total()
        && by_hand.rate_percentile(99.0).to_bits() == base_census.rate_percentile(99.0).to_bits();
    writeln!(
        out,
        "host 0 streaming census == materialized fold at {BASE} guests (bit-exact) -> {}",
        if fold_exact { "PASS" } else { "FAIL" }
    )
    .unwrap();

    // Gate 2: histogram percentiles track exact quickselect on the
    // materialized reference within the bucket-midpoint resolution.
    let mut worst_pct_err = 0.0f64;
    for p in [50.0, 99.0, 99.9] {
        let exact = bmhive_sim::stats::exact_percentile(&rates, p);
        let streamed = base_census.rate_percentile(p);
        worst_pct_err = worst_pct_err.max((streamed - exact).abs() / exact);
    }
    writeln!(
        out,
        "histogram percentiles vs quickselect at {BASE} guests: worst rel err {:.4} (tol 0.05) -> {}",
        worst_pct_err,
        if worst_pct_err < 0.05 { "PASS" } else { "FAIL" }
    )
    .unwrap();

    // Gate 3: census fractions are stable across two decades of scale
    // (the 100 hosts draw disjoint streams, so this is a genuine
    // independent-shard stability check, not a shared-prefix identity).
    let base_rows = runs[0].2.rows();
    let big_rows = runs[runs.len() - 1].2.rows();
    let mut worst_drift = 0.0f64;
    for (b, g) in base_rows.iter().zip(&big_rows) {
        worst_drift = worst_drift.max((b.1 - g.1).abs());
    }
    writeln!(
        out,
        "census fractions, 1M vs {BASE} guests: worst drift {:.3} pp (tol 0.75) -> {}",
        worst_drift,
        if worst_drift < 0.75 { "PASS" } else { "FAIL" }
    )
    .unwrap();

    // Gate 4: O(1) memory per worker — censusing one host of a
    // 100-host fleet must not allocate more than censusing the single
    // host of the small fleet, plus slack.
    if metered {
        let base_peak = runs[0].3;
        let big_peak = runs[runs.len() - 1].3;
        writeln!(
            out,
            "O(1) memory per worker: 1M-guest worst host peak {big_peak} B <= single-host peak {base_peak} B + {SLACK_BYTES} B -> {}",
            if big_peak <= base_peak + SLACK_BYTES { "PASS" } else { "FAIL" }
        )
        .unwrap();
    } else {
        writeln!(
            out,
            "O(1) memory per worker: counting allocator not installed -> SKIPPED"
        )
        .unwrap();
    }

    // Gate 5: the preemption study's streaming twin tracks the exact
    // quickselect study over identical draws. The two studies are
    // independent whole-fleet passes, so they ride the same pool as a
    // two-shard fan-out (study order, like host order, is fixed).
    let studies = par::run_hosts(2, seed, |which| {
        if which == 0 {
            PreemptionStudy::run(4_000, seed)
        } else {
            PreemptionStudy::stream(4_000, seed)
        }
    });
    let (exact_study, stream_study) = (&studies[0], &studies[1]);
    let mut worst_study_err = 0.0f64;
    for h in 0..24 {
        for (a, b) in [
            (exact_study.shared_p99[h], stream_study.shared_p99[h]),
            (exact_study.shared_p999[h], stream_study.shared_p999[h]),
            (exact_study.exclusive_p99[h], stream_study.exclusive_p99[h]),
            (
                exact_study.exclusive_p999[h],
                stream_study.exclusive_p999[h],
            ),
        ] {
            worst_study_err = worst_study_err.max((b - a).abs() / a);
        }
    }
    writeln!(
        out,
        "preemption stream vs exact (4000 VMs, 24h): worst rel err {:.4} (tol 0.10) -> {}",
        worst_study_err,
        if worst_study_err < 0.10 {
            "PASS"
        } else {
            "FAIL"
        }
    )
    .unwrap();
    out
}

/// Base RNG stream selector for region guest exit-rate draws (distinct
/// from the fleet census base so the two experiments never share
/// draws).
const REGION_EXIT_STREAM: u64 = 0xbe91;
/// Base RNG stream selector for region per-host operations (preemption
/// pressure probes).
const REGION_OPS_STREAM: u64 = 0x09b5;

/// Renders the region census: hundreds of hosts, each running a full
/// day of live operations — initial guest placement, diurnal
/// replacement churn, an exit-rate census over every admitted guest,
/// and hourly preemption pressure probes — fanned out host-by-host
/// across [`par::run_hosts`] and folded in host-index order. This is
/// the on-ramp to the ROADMAP region-scale scenario: per-host work is
/// a pure function of the host index, so the report is byte-identical
/// at every `--jobs` width.
pub fn region_census(seed: u64) -> String {
    const HOSTS: usize = 200;
    const GUESTS_PER_HOST: u64 = 480;
    const THRESHOLDS: [f64; 3] = [10_000.0, 50_000.0, 100_000.0];

    let days = par::run_hosts(HOSTS, seed, |host| {
        RegionHostDay::run(
            GUESTS_PER_HOST,
            &THRESHOLDS,
            seed,
            par::host_stream(REGION_EXIT_STREAM, host),
            par::host_stream(REGION_OPS_STREAM, host),
        )
    });
    // Host-index-ordered fold into the region-wide view.
    let mut region = days[0].clone();
    for day in &days[1..] {
        region.merge(day);
    }

    let mut out = String::new();
    writeln!(
        out,
        "Region census: {HOSTS} hosts x {GUESTS_PER_HOST} guests/host, 24 h diurnal churn (seed {seed})"
    )
    .unwrap();
    writeln!(
        out,
        "fleet: admitted {} | departed {} | peak concurrent/host {} | guest-hours {}",
        region.arrivals, region.departures, region.peak_guests, region.guest_hours
    )
    .unwrap();
    writeln!(out, "exit-rate census over every admitted guest:").unwrap();
    writeln!(
        out,
        "{:>12} | {:>14} | {:>10}",
        "# of exits", "percent of VMs", "paper"
    )
    .unwrap();
    let paper = [3.82, 0.37, 0.13];
    for ((threshold, pct), paper_pct) in region.census.rows().into_iter().zip(paper) {
        writeln!(
            out,
            "{:>11}K | {:>13.2}% | {:>9.2}%",
            threshold as u64 / 1000,
            pct,
            paper_pct
        )
        .unwrap();
    }
    writeln!(
        out,
        "exit-rate percentiles: p50 {:.0} | p99 {:.0} | p99.9 {:.0}",
        region.census.rate_percentile(50.0),
        region.census.rate_percentile(99.0),
        region.census.rate_percentile(99.9)
    )
    .unwrap();
    writeln!(
        out,
        "preemption pressure ({} probes/class): shared p99 {:.2}% p99.9 {:.2}% | exclusive p99 {:.3}% p99.9 {:.3}%",
        region.preempt_samples(),
        region.shared_preempt_percentile(99.0),
        region.shared_preempt_percentile(99.9),
        region.exclusive_preempt_percentile(99.0),
        region.exclusive_preempt_percentile(99.9)
    )
    .unwrap();
    // Host-ordered shard trace: the first and last hosts' days, as the
    // merged report's per-shard sections (host order, never completion
    // order).
    writeln!(out, "per-host shards (host order, first 4 and last):").unwrap();
    for h in [0usize, 1, 2, 3, HOSTS - 1] {
        let day = &days[h];
        writeln!(
            out,
            "  host {h:>4}: admitted {:>4} | departed {:>4} | peak {:>3} | >10K {:>5.2}% | shared p99 {:.2}%",
            day.arrivals,
            day.departures,
            day.peak_guests,
            day.census.rows()[0].1,
            day.shared_preempt_percentile(99.0)
        )
        .unwrap();
    }
    out
}

/// Every experiment in paper order: `(id, rendered output)`.
/// Every experiment id, in the paper's presentation order.
pub const EXPERIMENT_IDS: [&str; 26] = [
    "table1",
    "table2",
    "fig1",
    "table3",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "cost",
    "nested",
    "iobond",
    "asic",
    "offload",
    "sgx",
    "trading",
    "faults",
    "traffic_policies",
    "traffic_isolation",
    "fleet_scale",
    "region_census",
];

/// Experiments whose inner work fans out across [`par::run_hosts`] —
/// the ones `--jobs N` accelerates (with byte-identical output). The
/// CLI and bench harness consult this list to decide where a parallel
/// timing pass is meaningful.
pub const PARALLEL_EXPERIMENT_IDS: [&str; 2] = ["fleet_scale", "region_census"];

/// Runs one experiment by id. Returns `None` for unknown ids.
///
/// Experiments run lazily, one at a time — so `repro --trace iobond`
/// captures a telemetry trace of *that* experiment alone rather than
/// of the whole suite.
pub fn run_experiment(id: &str, seed: u64) -> Option<String> {
    Some(match id {
        "table1" => table1(),
        "table2" => table2(seed),
        "fig1" => fig1(seed),
        "table3" => table3(),
        "fig7" => fig7(),
        "fig8" => fig8(),
        "fig9" => fig9(seed),
        "fig10" => fig10(seed),
        "fig11" => fig11(seed),
        "fig12" => fig12(seed),
        "fig13" => fig13(seed),
        "fig14" => fig14(seed),
        "fig15" => fig15(seed),
        "fig16" => fig16(seed),
        "cost" => cost(),
        "nested" => nested(),
        "iobond" => iobond(),
        "asic" => asic(),
        "offload" => offload(),
        "sgx" => sgx(),
        "trading" => trading(seed),
        "faults" => faults(seed),
        "traffic_policies" => traffic_policies(seed),
        "traffic_isolation" => traffic_isolation(seed),
        "fleet_scale" => fleet_scale(seed),
        "region_census" => region_census(seed),
        _ => return None,
    })
}

/// Runs one experiment by id, rendering into a caller-provided buffer.
/// Returns `false` for unknown ids (the buffer is left untouched).
///
/// The one-shot, seed-free experiments render straight into `out`
/// with no intermediate `String`, so a warmed buffer (rendered once,
/// then cleared — `clear` keeps capacity) makes the re-render
/// allocation-free. That is what the bench harness meters for
/// `allocs_per_event`: steady-state allocations, not buffer growth.
/// Seeded experiments fall back to [`run_experiment`] and append.
pub fn run_experiment_into(id: &str, seed: u64, out: &mut String) -> bool {
    match id {
        "table1" => table1_into(out),
        "table3" => table3_into(out),
        "cost" => cost_into(out),
        "nested" => nested_into(out),
        "iobond" => iobond_into(out),
        "asic" => asic_into(out),
        "offload" => offload_into(out),
        "sgx" => sgx_into(out),
        _ => match run_experiment(id, seed) {
            Some(text) => out.push_str(&text),
            None => return false,
        },
    }
    true
}

/// Runs every experiment (in order), rendering each.
pub fn all_experiments(seed: u64) -> Vec<(&'static str, String)> {
    EXPERIMENT_IDS
        .iter()
        .map(|id| (*id, run_experiment(id, seed).expect("known id")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_experiment_renders_nonempty() {
        for (id, text) in all_experiments(1) {
            assert!(!text.trim().is_empty(), "{id} rendered nothing");
            assert!(text.lines().count() >= 2, "{id} rendered too little");
        }
    }

    #[test]
    fn experiments_are_deterministic_in_seed() {
        assert_eq!(table2(5), table2(5));
        assert_eq!(fig11(5), fig11(5));
        assert_ne!(table2(5), table2(6));
    }

    #[test]
    fn experiment_ids_are_unique_and_cover_the_paper() {
        let ids: Vec<&str> = all_experiments(1).into_iter().map(|(id, _)| id).collect();
        let unique: std::collections::HashSet<&&str> = ids.iter().collect();
        assert_eq!(unique.len(), ids.len());
        for required in [
            "table1", "table2", "table3", "fig1", "fig7", "fig8", "fig9", "fig10", "fig11",
            "fig12", "fig13", "fig14", "fig15", "fig16", "cost", "nested", "iobond", "asic",
        ] {
            assert!(ids.contains(&required), "missing {required}");
        }
    }
}
