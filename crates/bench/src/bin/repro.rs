//! Regenerates every table and figure of the paper's evaluation.
//!
//! Usage:
//!
//! ```text
//! cargo run -p bmhive-bench --release --bin repro            # everything
//! cargo run -p bmhive-bench --release --bin repro -- fig11   # one experiment
//! cargo run -p bmhive-bench --release --bin repro -- --seed 7 fig9 fig10
//! ```

use std::process::ExitCode;

fn main() -> ExitCode {
    let mut seed = 1u64;
    let mut out_dir: Option<std::path::PathBuf> = None;
    let mut requested: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => match args.next().and_then(|s| s.parse().ok()) {
                Some(s) => seed = s,
                None => {
                    eprintln!("--seed requires an integer");
                    return ExitCode::FAILURE;
                }
            },
            "--out" => match args.next() {
                Some(dir) => out_dir = Some(dir.into()),
                None => {
                    eprintln!("--out requires a directory");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                print_help();
                return ExitCode::SUCCESS;
            }
            other => requested.push(other.to_string()),
        }
    }

    let experiments = bmhive_bench::all_experiments(seed);
    let known: Vec<&str> = experiments.iter().map(|(id, _)| *id).collect();
    for r in &requested {
        if !known.contains(&r.as_str()) {
            eprintln!("unknown experiment '{r}'; known: {}", known.join(", "));
            return ExitCode::FAILURE;
        }
    }

    if let Some(dir) = &out_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    }
    let mut printed = 0;
    for (id, text) in &experiments {
        if requested.is_empty() || requested.iter().any(|r| r == id) {
            println!("======== {id} ========");
            println!("{text}");
            if let Some(dir) = &out_dir {
                let path = dir.join(format!("{id}.txt"));
                if let Err(e) = std::fs::write(&path, text) {
                    eprintln!("cannot write {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
            }
            printed += 1;
        }
    }
    if let Some(dir) = &out_dir {
        eprintln!("[repro] wrote {printed} file(s) under {}", dir.display());
    }
    eprintln!("[repro] {printed} experiment(s) rendered with seed {seed}");
    ExitCode::SUCCESS
}

fn print_help() {
    println!("repro — regenerate the BM-Hive paper's tables and figures");
    println!();
    println!("USAGE: repro [--seed N] [--out DIR] [experiment ...]");
    println!();
    println!("experiments: table1 table2 fig1 table3 fig7 fig8 fig9 fig10 fig11");
    println!("             fig12 fig13 fig14 fig15 fig16 cost nested iobond asic offload sgx trading");
}
