//! Regenerates every table and figure of the paper's evaluation.
//!
//! Usage:
//!
//! ```text
//! cargo run -p bmhive-bench --release --bin repro            # everything
//! cargo run -p bmhive-bench --release --bin repro -- fig11   # one experiment
//! cargo run -p bmhive-bench --release --bin repro -- --seed 7 fig9 fig10
//! cargo run -p bmhive-bench --release --bin repro -- --trace /tmp/t.json iobond
//! cargo run -p bmhive-bench --release --bin repro -- --metrics fig11
//! cargo run -p bmhive-bench --release --bin repro -- --faults link-flap faults
//! ```

use bmhive_faults as faults;
use bmhive_telemetry as telemetry;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut seed = 1u64;
    let mut out_dir: Option<PathBuf> = None;
    let mut trace_path: Option<PathBuf> = None;
    let mut metrics = false;
    let mut fault_plan: Option<String> = None;
    let mut requested: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => match args.next().and_then(|s| s.parse().ok()) {
                Some(s) => seed = s,
                None => {
                    eprintln!("--seed requires an integer");
                    return ExitCode::FAILURE;
                }
            },
            "--out" => match args.next() {
                Some(dir) => out_dir = Some(dir.into()),
                None => {
                    eprintln!("--out requires a directory");
                    return ExitCode::FAILURE;
                }
            },
            "--trace" => match args.next() {
                Some(path) => trace_path = Some(path.into()),
                None => {
                    eprintln!("--trace requires a file path");
                    return ExitCode::FAILURE;
                }
            },
            "--metrics" => metrics = true,
            "--faults" => match args.next() {
                Some(arg) => fault_plan = Some(arg),
                None => {
                    eprintln!("--faults requires a canned plan name or a JSON file path");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                print_help();
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("unknown flag '{other}' (see --help)");
                return ExitCode::FAILURE;
            }
            other => requested.push(other.to_string()),
        }
    }

    let known = bmhive_bench::EXPERIMENT_IDS;
    for r in &requested {
        if !known.contains(&r.as_str()) {
            eprintln!("unknown experiment '{r}'; known: {}", known.join(", "));
            return ExitCode::FAILURE;
        }
    }

    // Validate output destinations up front, before hours of experiments.
    if let Some(dir) = &out_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create --out {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    }
    if let Some(path) = &trace_path {
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            if let Err(e) = std::fs::create_dir_all(parent) {
                eprintln!("cannot create --trace directory {}: {e}", parent.display());
                return ExitCode::FAILURE;
            }
        }
    }

    // Arm the fault plan (if any) before the first experiment, so the
    // whole run is injected and recovered deterministically in `seed`.
    if let Some(arg) = &fault_plan {
        match resolve_fault_plan(arg) {
            Ok(plan) => faults::arm(plan, seed),
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let telemetry_on = trace_path.is_some() || metrics;
    if telemetry_on {
        telemetry::set_enabled(true);
        telemetry::reset();
    }

    let mut printed = 0;
    for id in known {
        if !requested.is_empty() && !requested.iter().any(|r| r == id) {
            continue;
        }
        let text = bmhive_bench::run_experiment(id, seed).expect("known id");
        println!("======== {id} ========");
        println!("{text}");
        if let Some(dir) = &out_dir {
            let txt = dir.join(format!("{id}.txt"));
            if let Err(e) = std::fs::write(&txt, &text) {
                eprintln!("cannot write {}: {e}", txt.display());
                return ExitCode::FAILURE;
            }
            let json = dir.join(format!("{id}.json"));
            if let Err(e) = std::fs::write(&json, experiment_json(id, seed, &text)) {
                eprintln!("cannot write {}: {e}", json.display());
                return ExitCode::FAILURE;
            }
        }
        printed += 1;
    }

    if fault_plan.is_some() {
        let stats = faults::disarm().expect("armed above");
        println!("======== fault stats ========");
        print!("{}", stats.to_text());
    }

    if telemetry_on {
        let snap = telemetry::snapshot();
        if let Some(path) = &trace_path {
            let doc = telemetry::export::chrome_trace(&snap.events);
            if let Err(e) = std::fs::write(path, doc) {
                eprintln!("cannot write trace {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            eprintln!(
                "[repro] wrote {} span(s) to {} ({} dropped by the ring buffer)",
                snap.events.len(),
                path.display(),
                snap.dropped
            );
        }
        if metrics {
            println!("======== latency attribution ========");
            print!(
                "{}",
                telemetry::Attribution::from_events(&snap.events).to_text()
            );
            println!("======== metrics ========");
            print!("{}", snap.registry.to_text());
        }
        telemetry::set_enabled(false);
    }

    if let Some(dir) = &out_dir {
        eprintln!(
            "[repro] wrote {printed} experiment(s) (.txt + .json) under {}",
            dir.display()
        );
    }
    eprintln!("[repro] {printed} experiment(s) rendered with seed {seed}");
    ExitCode::SUCCESS
}

/// A machine-readable summary of one rendered experiment: the id, the
/// seed, and the report body as a JSON array of lines (jq-friendly).
fn experiment_json(id: &str, seed: u64, text: &str) -> String {
    use telemetry::export::json_escape;
    let mut out = format!(
        "{{\"experiment\":\"{}\",\"seed\":{seed},\"lines\":[",
        json_escape(id)
    );
    for (i, line) in text.lines().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        out.push_str(&json_escape(line));
        out.push('"');
    }
    out.push_str("]}\n");
    out
}

/// Resolves a `--faults` argument: a canned plan name first, else a
/// JSON plan file (the format `FaultPlan::to_json` writes).
fn resolve_fault_plan(arg: &str) -> Result<faults::FaultPlan, String> {
    if let Some(plan) = faults::canned(arg) {
        return Ok(plan);
    }
    let doc = std::fs::read_to_string(arg).map_err(|e| {
        format!(
            "--faults '{arg}' is neither a canned plan ({}) nor a readable file: {e}",
            faults::CANNED_PLAN_NAMES.join(", ")
        )
    })?;
    faults::FaultPlan::from_json(&doc).map_err(|e| format!("cannot parse --faults {arg}: {e}"))
}

fn print_help() {
    println!("repro — regenerate the BM-Hive paper's tables and figures");
    println!();
    println!(
        "USAGE: repro [--seed N] [--out DIR] [--trace FILE] [--metrics] [--faults PLAN] [experiment ...]"
    );
    println!();
    println!("  --seed N       seed for every stochastic experiment (default 1)");
    println!("  --out DIR      write each experiment as DIR/<id>.txt + DIR/<id>.json");
    println!("  --trace FILE   record a virtual-time telemetry trace of the run and");
    println!("                 write it as Chrome trace_event JSON (chrome://tracing)");
    println!("  --metrics      print the latency attribution and metrics registry");
    println!("  --faults PLAN  arm a fault plan for the whole run: a canned name");
    println!("                 (link-flap, dma-timeout, backend-brownout, board-loss)");
    println!("                 or a JSON plan file; prints the fault stats at the end.");
    println!("                 Pairs naturally with the 'faults' experiment.");
    println!();
    println!("experiments: table1 table2 fig1 table3 fig7 fig8 fig9 fig10 fig11");
    println!("             fig12 fig13 fig14 fig15 fig16 cost nested iobond asic offload sgx");
    println!("             trading faults");
}
