//! Regenerates every table and figure of the paper's evaluation.
//!
//! Usage:
//!
//! ```text
//! cargo run -p bmhive-bench --release --bin repro            # everything
//! cargo run -p bmhive-bench --release --bin repro -- fig11   # one experiment
//! cargo run -p bmhive-bench --release --bin repro -- --seed 7 fig9 fig10
//! cargo run -p bmhive-bench --release --bin repro -- --trace /tmp/t.json iobond
//! cargo run -p bmhive-bench --release --bin repro -- --metrics fig11
//! cargo run -p bmhive-bench --release --bin repro -- --faults link-flap faults
//! cargo run -p bmhive-bench --release --bin repro -- sweep --jobs 8
//! cargo run -p bmhive-bench --release --bin repro -- sweep --jobs 8 --shard 0/3 --out shard-0
//! cargo run -p bmhive-bench --release --bin repro -- merge shard-0 shard-1 shard-2
//! cargo run -p bmhive-bench --release --bin repro -- bench --out BENCH_results.json
//! ```

use bmhive_bench::harness::BenchReport;
use bmhive_bench::merge;
use bmhive_bench::sweep::{self, Shard, SweepSpec};
use bmhive_faults as faults;
use bmhive_telemetry as telemetry;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

/// The counting allocator backs the `fleet_scale` experiment's
/// peak-RSS-proxy gate: per-thread live/peak byte counters over the
/// system allocator. Overhead is two thread-local adds per
/// alloc/dealloc; experiments that don't meter never read it.
#[global_allocator]
static ALLOC: telemetry::alloc::CountingAlloc = telemetry::alloc::CountingAlloc::system();

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("sweep") => sweep_main(&args[1..]),
        Some("merge") => merge_main(&args[1..]),
        Some("bench") => bench_main(&args[1..]),
        _ => repro_main(&args),
    }
}

/// The classic single-pass mode: render the requested experiments once.
fn repro_main(args: &[String]) -> ExitCode {
    let mut seed = 1u64;
    let mut jobs = 1usize;
    let mut out_dir: Option<PathBuf> = None;
    let mut trace_path: Option<PathBuf> = None;
    let mut metrics = false;
    let mut fault_plan: Option<String> = None;
    let mut requested: Vec<String> = Vec::new();
    let mut args = args.iter().cloned();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => match args.next().and_then(|s| s.parse().ok()) {
                Some(s) => seed = s,
                None => {
                    eprintln!("--seed requires an integer");
                    return ExitCode::FAILURE;
                }
            },
            "--jobs" => match args.next().and_then(|s| s.parse().ok()) {
                Some(0) => {
                    eprintln!("--jobs must be at least 1 (got 0)");
                    return ExitCode::FAILURE;
                }
                Some(n) => jobs = n,
                None => {
                    eprintln!("--jobs requires a positive integer");
                    return ExitCode::FAILURE;
                }
            },
            "--out" => match args.next() {
                Some(dir) => out_dir = Some(dir.into()),
                None => {
                    eprintln!("--out requires a directory");
                    return ExitCode::FAILURE;
                }
            },
            "--trace" => match args.next() {
                Some(path) => trace_path = Some(path.into()),
                None => {
                    eprintln!("--trace requires a file path");
                    return ExitCode::FAILURE;
                }
            },
            "--metrics" => metrics = true,
            "--faults" => match args.next() {
                Some(arg) => fault_plan = Some(arg),
                None => {
                    eprintln!("--faults requires a canned plan name or a JSON file path");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                print_help();
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("unknown flag '{other}' (see --help)");
                return ExitCode::FAILURE;
            }
            other => requested.push(other.to_string()),
        }
    }

    let known = bmhive_bench::EXPERIMENT_IDS;
    for r in &requested {
        if !known.contains(&r.as_str()) {
            eprintln!("unknown experiment '{r}'; known: {}", known.join(", "));
            return ExitCode::FAILURE;
        }
    }

    // Validate output destinations up front, before hours of experiments.
    if let Some(dir) = &out_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create --out {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    }
    if let Some(path) = &trace_path {
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            if let Err(e) = std::fs::create_dir_all(parent) {
                eprintln!("cannot create --trace directory {}: {e}", parent.display());
                return ExitCode::FAILURE;
            }
        }
    }

    // Arm the fault plan (if any) before the first experiment, so the
    // whole run is injected and recovered deterministically in `seed`.
    if let Some(arg) = &fault_plan {
        match sweep::resolve_plan(arg) {
            Ok(plan) => faults::arm(plan, seed),
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
    }

    // Host-sharded experiments fan their per-host work across this
    // many workers; output is byte-identical for any width.
    bmhive_bench::par::set_jobs(jobs);

    let telemetry_on = trace_path.is_some() || metrics;
    if telemetry_on {
        telemetry::set_enabled(true);
        telemetry::reset();
    }

    let mut printed = 0;
    for id in known {
        if !requested.is_empty() && !requested.iter().any(|r| r == id) {
            continue;
        }
        let text = bmhive_bench::run_experiment(id, seed).expect("known id");
        println!("======== {id} ========");
        println!("{text}");
        if let Some(dir) = &out_dir {
            let txt = dir.join(format!("{id}.txt"));
            if let Err(e) = std::fs::write(&txt, &text) {
                eprintln!("cannot write {}: {e}", txt.display());
                return ExitCode::FAILURE;
            }
            let json = dir.join(format!("{id}.json"));
            if let Err(e) = std::fs::write(&json, experiment_json(id, seed, &text)) {
                eprintln!("cannot write {}: {e}", json.display());
                return ExitCode::FAILURE;
            }
        }
        printed += 1;
    }

    if fault_plan.is_some() {
        let stats = faults::disarm().expect("armed above");
        println!("======== fault stats ========");
        print!("{}", stats.to_text());
        if let Some(dir) = &out_dir {
            let path = dir.join("fault_stats.json");
            if let Err(e) = std::fs::write(&path, stats.to_json()) {
                eprintln!("cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            eprintln!("[repro] wrote fault stats to {}", path.display());
        }
    }

    if telemetry_on {
        let snap = telemetry::snapshot();
        if let Some(path) = &trace_path {
            let doc = telemetry::export::chrome_trace(&snap.events);
            if let Err(e) = std::fs::write(path, doc) {
                eprintln!("cannot write trace {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            eprintln!(
                "[repro] wrote {} span(s) to {} ({} dropped by the ring buffer)",
                snap.events.len(),
                path.display(),
                snap.dropped
            );
        }
        if metrics {
            println!("======== latency attribution ========");
            print!(
                "{}",
                telemetry::Attribution::from_events(&snap.events).to_text()
            );
            println!("======== metrics ========");
            print!("{}", snap.registry.to_text());
        }
        telemetry::set_enabled(false);
    }

    if let Some(dir) = &out_dir {
        eprintln!(
            "[repro] wrote {printed} experiment(s) (.txt + .json) under {}",
            dir.display()
        );
    }
    eprintln!("[repro] {printed} experiment(s) rendered with seed {seed}");
    ExitCode::SUCCESS
}

/// `repro sweep`: the (experiment × seed × plan) cross product, in
/// parallel, byte-identical to the serial order.
fn sweep_main(args: &[String]) -> ExitCode {
    let mut spec = SweepSpec::full_matrix();
    let mut out_dir: Option<PathBuf> = None;
    let mut shard: Option<Shard> = None;
    let mut experiments: Vec<String> = Vec::new();
    let mut args = args.iter().cloned();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--jobs" => match args.next().and_then(|s| s.parse().ok()) {
                Some(0) => {
                    eprintln!("--jobs must be at least 1 (got 0)");
                    return ExitCode::FAILURE;
                }
                Some(n) => spec.jobs = n,
                None => {
                    eprintln!("--jobs requires a positive integer");
                    return ExitCode::FAILURE;
                }
            },
            "--shard" => match args.next().map(|s| Shard::parse(&s)) {
                Some(Ok(s)) => shard = Some(s),
                Some(Err(e)) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
                None => {
                    eprintln!("--shard requires I/N (e.g. 0/3); I counts from 0 and must be < N");
                    return ExitCode::FAILURE;
                }
            },
            "--seeds" => match args.next().map(|s| parse_seed_list(&s)) {
                Some(Ok(seeds)) => spec.seeds = seeds,
                _ => {
                    eprintln!("--seeds requires a comma-separated integer list, e.g. 1,2,3,4");
                    return ExitCode::FAILURE;
                }
            },
            "--plans" => match args.next() {
                Some(list) => spec.plans = parse_plan_list(&list),
                None => {
                    eprintln!(
                        "--plans requires a comma-separated list of plan names/files; \
                         'clean' is the un-injected run, 'all' is clean + every canned plan"
                    );
                    return ExitCode::FAILURE;
                }
            },
            "--trace" => spec.trace = true,
            "--out" => match args.next() {
                Some(dir) => out_dir = Some(dir.into()),
                None => {
                    eprintln!("--out requires a directory");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                print_sweep_help();
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("unknown sweep flag '{other}' (see repro sweep --help)");
                return ExitCode::FAILURE;
            }
            other => experiments.push(other.to_string()),
        }
    }
    if !experiments.is_empty() {
        spec.experiments = experiments;
    }
    if spec.trace && out_dir.is_none() {
        eprintln!("sweep --trace needs --out DIR to write the per-cell trace files");
        return ExitCode::FAILURE;
    }
    if shard.is_some() && out_dir.is_none() {
        eprintln!("sweep --shard needs --out DIR to hold the shard's cells and manifest");
        return ExitCode::FAILURE;
    }
    if let Some(dir) = &out_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create --out {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    }

    let start = Instant::now();
    let outputs = match sweep::run_sweep_shard(&spec, shard.unwrap_or(Shard::WHOLE)) {
        Ok(outputs) => outputs,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let wall = start.elapsed();

    for (_, out) in &outputs {
        print!("{}", sweep::render_cell(out));
    }
    if let Some(dir) = &out_dir {
        match shard {
            // Sharded runs write the manifest alongside the cells so
            // `repro merge` can validate and reassemble the split.
            Some(shard) => {
                if let Err(e) = merge::write_shard_dir(dir, &spec, shard, &outputs) {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            }
            None => {
                for (_, out) in &outputs {
                    let stem = out.cell.file_stem();
                    let txt = dir.join(format!("{stem}.txt"));
                    if let Err(e) = std::fs::write(&txt, sweep::render_cell(out)) {
                        eprintln!("cannot write {}: {e}", txt.display());
                        return ExitCode::FAILURE;
                    }
                    if let Some(trace) = &out.trace_json {
                        let path = dir.join(format!("{stem}.trace.json"));
                        if let Err(e) = std::fs::write(&path, trace) {
                            eprintln!("cannot write {}: {e}", path.display());
                            return ExitCode::FAILURE;
                        }
                    }
                }
            }
        }
    }
    let shard_note = match shard {
        Some(s) => format!(" [shard {s}]"),
        None => String::new(),
    };
    eprintln!(
        "[sweep] {} cell(s){shard_note} ({} experiment(s) x {} seed(s) x {} plan(s)) with --jobs {} in {:.3}s",
        outputs.len(),
        spec.experiments.len(),
        spec.seeds.len(),
        spec.plans.len(),
        spec.jobs,
        wall.as_secs_f64(),
    );
    ExitCode::SUCCESS
}

/// `repro merge`: validate shard directories and reassemble the serial
/// sweep output from them.
fn merge_main(args: &[String]) -> ExitCode {
    let mut dirs: Vec<PathBuf> = Vec::new();
    let mut out_dir: Option<PathBuf> = None;
    let mut args = args.iter().cloned();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => match args.next() {
                Some(dir) => out_dir = Some(dir.into()),
                None => {
                    eprintln!("--out requires a directory");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                print_merge_help();
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("unknown merge flag '{other}' (see repro merge --help)");
                return ExitCode::FAILURE;
            }
            other => dirs.push(other.into()),
        }
    }
    if dirs.is_empty() {
        eprintln!("repro merge needs at least one shard directory (see repro merge --help)");
        return ExitCode::FAILURE;
    }

    let plan = match merge::plan_merge(&dirs) {
        Ok(plan) => plan,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let combined = match plan.concat_reports() {
        Ok(text) => text,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    print!("{combined}");
    if let Some(dir) = &out_dir {
        if let Err(e) = plan.write_combined(dir) {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
        eprintln!(
            "[merge] wrote {} cell(s) under {}",
            plan.cells.len(),
            dir.display()
        );
    }
    let splits: Vec<String> = plan.manifests.iter().map(|m| m.shard.to_string()).collect();
    eprintln!(
        "[merge] {} shard(s) [{}] -> {} cell(s), spec {}",
        plan.manifests.len(),
        splits.join(", "),
        plan.cells.len(),
        plan.manifests[0].spec_hash,
    );
    ExitCode::SUCCESS
}

/// `repro bench`: time each experiment and emit/check the trajectory.
fn bench_main(args: &[String]) -> ExitCode {
    let mut seed = 1u64;
    let mut repeats = 3u32;
    let mut jobs = 1usize;
    let mut out_path: Option<PathBuf> = None;
    let mut check_path: Option<PathBuf> = None;
    let mut compare_out: Option<PathBuf> = None;
    let mut tolerance = 0.25f64;
    let mut experiments: Vec<String> = Vec::new();
    let mut args = args.iter().cloned();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => match args.next().and_then(|s| s.parse().ok()) {
                Some(s) => seed = s,
                None => {
                    eprintln!("--seed requires an integer");
                    return ExitCode::FAILURE;
                }
            },
            "--repeat" => match args.next().and_then(|s| s.parse().ok()) {
                Some(r) => repeats = r,
                None => {
                    eprintln!("--repeat requires an integer");
                    return ExitCode::FAILURE;
                }
            },
            "--jobs" => match args.next().and_then(|s| s.parse().ok()) {
                Some(0) => {
                    eprintln!("--jobs must be at least 1 (got 0)");
                    return ExitCode::FAILURE;
                }
                Some(n) => jobs = n,
                None => {
                    eprintln!("--jobs requires a positive integer");
                    return ExitCode::FAILURE;
                }
            },
            "--out" => match args.next() {
                Some(path) => out_path = Some(path.into()),
                None => {
                    eprintln!("--out requires a file path");
                    return ExitCode::FAILURE;
                }
            },
            "--check" => match args.next() {
                Some(path) => check_path = Some(path.into()),
                None => {
                    eprintln!("--check requires a baseline JSON file");
                    return ExitCode::FAILURE;
                }
            },
            "--compare-out" => match args.next() {
                Some(path) => compare_out = Some(path.into()),
                None => {
                    eprintln!("--compare-out requires a file path (needs --check)");
                    return ExitCode::FAILURE;
                }
            },
            "--tolerance" => match args.next().and_then(|s| s.parse().ok()) {
                Some(t) => tolerance = t,
                None => {
                    eprintln!("--tolerance requires a fraction, e.g. 0.25");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                print_bench_help();
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("unknown bench flag '{other}' (see repro bench --help)");
                return ExitCode::FAILURE;
            }
            other => experiments.push(other.to_string()),
        }
    }
    if experiments.is_empty() {
        experiments = bmhive_bench::EXPERIMENT_IDS
            .iter()
            .map(|s| s.to_string())
            .collect();
    }

    let baseline = match &check_path {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(doc) => match BenchReport::from_json(&doc) {
                Ok(report) => Some(report),
                Err(e) => {
                    eprintln!("cannot parse --check {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
            },
            Err(e) => {
                eprintln!("cannot read --check {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };

    let report = match bmhive_bench::harness::run_bench_jobs(&experiments, seed, repeats, jobs) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };

    println!(
        "{:<10} | {:>12} | {:>10} | {:>14} | {:>12} | {:>10} | {:>12} | {:>9} | {:>4} | {:>7}",
        "experiment",
        "wall ms",
        "events",
        "events/sec",
        "allocs/ev",
        "peak depth",
        "suppressed",
        "batch len",
        "jobs",
        "speedup"
    );
    for r in &report.results {
        println!(
            "{:<10} | {:>12.3} | {:>10} | {:>14.0} | {:>12.4} | {:>10.1} | {:>12} | {:>9.2} | {:>4} | {:>7.2}",
            r.experiment,
            r.wall_ns as f64 / 1e6,
            r.events,
            r.events_per_sec,
            r.allocs_per_event,
            r.peak_queue_depth,
            r.doorbells_suppressed,
            r.mean_batch_len,
            r.jobs,
            r.parallel_speedup
        );
    }
    println!(
        "{:<10} | {:>12.3} | (min of {} run(s), seed {})",
        "total",
        report.total_wall_ns() as f64 / 1e6,
        report.repeats,
        report.seed
    );

    if let Some(path) = &out_path {
        if let Err(e) = std::fs::write(path, report.to_json()) {
            eprintln!("cannot write --out {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("[bench] wrote {}", path.display());
    }

    if compare_out.is_some() && baseline.is_none() {
        eprintln!("--compare-out needs --check to provide the baseline");
        return ExitCode::FAILURE;
    }
    if let Some(baseline) = &baseline {
        if let Some(path) = &compare_out {
            if let Err(e) = std::fs::write(path, report.comparison_table(baseline)) {
                eprintln!("cannot write --compare-out {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            eprintln!("[bench] wrote comparison table to {}", path.display());
        }
        let problems = report.check_against(baseline, tolerance);
        if problems.is_empty() {
            eprintln!(
                "[bench] no regression vs {} at {:.0}% tolerance",
                check_path.expect("checked above").display(),
                tolerance * 100.0
            );
        } else {
            for p in &problems {
                eprintln!("[bench] REGRESSION: {p}");
            }
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

fn parse_seed_list(list: &str) -> Result<Vec<u64>, ()> {
    let seeds: Result<Vec<u64>, _> = list.split(',').map(|s| s.trim().parse()).collect();
    match seeds {
        Ok(seeds) if !seeds.is_empty() => Ok(seeds),
        _ => Err(()),
    }
}

fn parse_plan_list(list: &str) -> Vec<Option<String>> {
    if list == "all" {
        return SweepSpec::full_matrix().plans;
    }
    list.split(',')
        .map(|s| s.trim())
        .filter(|s| !s.is_empty())
        .map(|s| {
            if s == sweep::CLEAN {
                None
            } else {
                Some(s.to_string())
            }
        })
        .collect()
}

/// A machine-readable summary of one rendered experiment: the id, the
/// seed, and the report body as a JSON array of lines (jq-friendly).
fn experiment_json(id: &str, seed: u64, text: &str) -> String {
    use telemetry::export::json_escape;
    let mut out = format!(
        "{{\"experiment\":\"{}\",\"seed\":{seed},\"lines\":[",
        json_escape(id)
    );
    for (i, line) in text.lines().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        out.push_str(&json_escape(line));
        out.push('"');
    }
    out.push_str("]}\n");
    out
}

fn print_help() {
    println!("repro — regenerate the BM-Hive paper's tables and figures");
    println!();
    println!(
        "USAGE: repro [--seed N] [--jobs N] [--out DIR] [--trace FILE] [--metrics] [--faults PLAN] [experiment ...]"
    );
    println!("       repro sweep [...]   parallel (experiment x seed x plan) sweep (see repro sweep --help)");
    println!("       repro merge [...]   reassemble sharded sweep output (see repro merge --help)");
    println!("       repro bench [...]   wall-clock benchmark trajectory (see repro bench --help)");
    println!();
    println!("  --seed N       seed for every stochastic experiment (default 1)");
    println!("  --jobs N       worker threads for host-sharded experiments (fleet_scale,");
    println!("                 region_census); output is byte-identical for any N (default 1)");
    println!("  --out DIR      write each experiment as DIR/<id>.txt + DIR/<id>.json");
    println!("  --trace FILE   record a virtual-time telemetry trace of the run and");
    println!("                 write it as Chrome trace_event JSON (chrome://tracing)");
    println!("  --metrics      print the latency attribution and metrics registry");
    println!("  --faults PLAN  arm a fault plan for the whole run: a canned name");
    println!("                 (link-flap, dma-timeout, backend-brownout, board-loss)");
    println!("                 or a JSON plan file; prints the fault stats at the end");
    println!("                 (and writes DIR/fault_stats.json with --out).");
    println!("                 Pairs naturally with the 'faults' experiment.");
    println!();
    println!("experiments: table1 table2 fig1 table3 fig7 fig8 fig9 fig10 fig11");
    println!("             fig12 fig13 fig14 fig15 fig16 cost nested iobond asic offload sgx");
    println!("             trading faults traffic_policies traffic_isolation fleet_scale");
    println!("             region_census");
}

fn print_sweep_help() {
    println!("repro sweep — run the (experiment x seed x fault-plan) cross product in parallel");
    println!();
    println!("USAGE: repro sweep [--jobs N] [--seeds LIST] [--plans LIST] [--shard I/N] [--trace] [--out DIR] [experiment ...]");
    println!();
    println!("  --jobs N       worker threads, at least 1 (output is byte-identical for any N)");
    println!("  --seeds LIST   comma-separated seeds (default 1,2,3,4)");
    println!("  --plans LIST   comma-separated plan names/files; 'clean' = no faults,");
    println!("                 'all' = clean + every canned plan (the default)");
    println!("  --shard I/N    run only the cells whose canonical index is congruent to I");
    println!("                 mod N (0 <= I < N); requires --out, where a shard.json");
    println!("                 manifest is written for `repro merge`. Run every shard of");
    println!("                 the same spec (anywhere), then merge the directories.");
    println!("  --trace        record a chrome trace per cell (requires --out)");
    println!("  --out DIR      write DIR/<exp>-s<seed>-<plan>.txt (+ .trace.json with --trace)");
    println!();
    println!("Cells print in deterministic (experiment, seed, plan) order regardless of --jobs.");
}

fn print_merge_help() {
    println!("repro merge — reassemble a sharded sweep, byte-identical to the serial run");
    println!();
    println!("USAGE: repro merge [--out DIR] SHARD_DIR...");
    println!();
    println!("  --out DIR      also copy every cell's files into DIR (the combined");
    println!("                 directory a whole-matrix `sweep --out` would have written)");
    println!();
    println!("Validates the shard.json manifests first: every shard must come from the");
    println!("same spec (hash + field check), no cell may appear twice, and the shards");
    println!("together must cover the whole matrix. The concatenated cell reports are");
    println!("printed to stdout in canonical order — byte-identical to `repro sweep");
    println!("--jobs 1` stdout for the same spec.");
}

fn print_bench_help() {
    println!("repro bench — time each experiment and track the benchmark trajectory");
    println!();
    println!("USAGE: repro bench [--seed N] [--repeat R] [--jobs N] [--out FILE] [--check FILE] [--compare-out FILE] [--tolerance F] [experiment ...]");
    println!();
    println!("  --seed N        seed for every experiment (default 1)");
    println!(
        "  --repeat R      untraced timing runs per experiment; the minimum is kept (default 3)"
    );
    println!("  --jobs N        also time host-sharded experiments (fleet_scale, region_census)");
    println!("                  at N workers and record the parallel speedup vs 1 worker;");
    println!("                  wall/events columns always report the 1-worker run (default 1)");
    println!("  --out FILE      write the report as JSON (e.g. BENCH_results.json)");
    println!("  --check FILE    compare against a baseline report; per-experiment wall times are");
    println!(
        "                  normalized by the total-time ratio first, so a uniformly faster or"
    );
    println!("                  slower machine does not trip the check; events/sec and the");
    println!("                  deterministic allocs/event count are gated the same way");
    println!("  --compare-out FILE  write a before/after table vs the --check baseline");
    println!(
        "  --tolerance F   allowed per-experiment slowdown after normalization (default 0.25)"
    );
}
