//! Shard manifests and the merge step that reassembles a distributed
//! sweep.
//!
//! A sharded sweep (`repro sweep --shard I/N --out DIR`) writes the
//! same per-cell artifacts a whole-matrix `--out` run writes — one
//! `<stem>.txt` report per cell, plus `<stem>.trace.json` when traced
//! — and adds a self-describing manifest, [`MANIFEST_FILE`], recording
//! *which* cells of *which* spec the directory holds. `repro merge
//! DIR...` then reassembles the original run from any set of shard
//! directories, validating three things before touching a single cell
//! file:
//!
//! 1. **Spec identity** — every manifest's [`spec_hash`] (an FNV-1a of
//!    the canonical spec: experiments, seeds, plans, trace flag) must
//!    match, and the spec fields are cross-checked structurally so a
//!    hash collision cannot slip through.
//! 2. **Disjointness** — no cell index may appear in two shards.
//! 3. **Completeness** — the union of shard cells must be exactly
//!    `0..total_cells`.
//!
//! Because cells are byte-deterministic and the canonical cell order
//! is a pure function of the spec (experiment-major, then seed, then
//! plan — see [`SweepSpec::cells`]), concatenating the per-cell
//! reports in canonical index order reproduces the serial
//! `repro sweep --jobs 1` stdout byte for byte, and copying the cell
//! files into a combined directory reproduces its `--out` directory.
//! CI's shard matrix proves merge == serial with `cmp` on every PR.

use crate::sweep::{CellOutput, Shard, SweepSpec, CLEAN};
use bmhive_faults::json::{self, Json};
use bmhive_telemetry::export::json_escape;
use std::fmt;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// The manifest file a sharded sweep writes into its `--out`
/// directory.
pub const MANIFEST_FILE: &str = "shard.json";

/// The manifest format version this build reads and writes.
pub const MANIFEST_FORMAT: u64 = 1;

/// One cell a shard ran: its canonical index and the artifact stem its
/// files are named with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestCell {
    /// Canonical index in the spec's cell order.
    pub index: usize,
    /// Filename stem (`<stem>.txt`, `<stem>.trace.json`).
    pub stem: String,
}

/// The self-describing record of one shard's run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardManifest {
    /// Which stripe of the split this directory holds.
    pub shard: Shard,
    /// FNV-1a hash of the canonical spec (see [`spec_hash`]).
    pub spec_hash: String,
    /// Experiment ids, in spec order.
    pub experiments: Vec<String>,
    /// Seeds, in spec order.
    pub seeds: Vec<u64>,
    /// Plan column (`None` = clean), in spec order.
    pub plans: Vec<Option<String>>,
    /// Whether per-cell chrome traces were recorded.
    pub trace: bool,
    /// Cells in the *whole* matrix (all shards together).
    pub total_cells: usize,
    /// The cells this shard owns, in canonical order.
    pub cells: Vec<ManifestCell>,
}

/// Why a merge (or a manifest read) failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MergeError {
    /// A directory could not be read or a cell file is missing.
    Io(String),
    /// A manifest that does not parse or has the wrong format version.
    Manifest(String),
    /// Two manifests describe different sweeps.
    SpecMismatch(String),
    /// A cell index owned by more than one shard directory.
    Overlap {
        /// The doubly-owned canonical cell index.
        index: usize,
        /// The two directories claiming it.
        dirs: (String, String),
    },
    /// Shards that do not cover the whole matrix.
    Missing {
        /// Number of uncovered cells.
        count: usize,
        /// The first uncovered canonical index.
        first: usize,
    },
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergeError::Io(msg) => write!(f, "merge: {msg}"),
            MergeError::Manifest(msg) => write!(f, "merge: bad manifest: {msg}"),
            MergeError::SpecMismatch(msg) => write!(f, "merge: shard specs differ: {msg}"),
            MergeError::Overlap { index, dirs } => write!(
                f,
                "merge: shards overlap: cell {index} is in both {} and {}",
                dirs.0, dirs.1
            ),
            MergeError::Missing { count, first } => write!(
                f,
                "merge: incomplete coverage: {count} cell(s) missing (first: {first}); \
                 pass every shard directory of the split"
            ),
        }
    }
}

impl std::error::Error for MergeError {}

/// FNV-1a 64 over a canonical rendering of the spec's output-relevant
/// fields (experiments, seeds, plans, trace — `jobs` is excluded since
/// worker count never changes the bytes), rendered as 16 hex digits.
pub fn spec_hash(spec: &SweepSpec) -> String {
    let mut canon = String::new();
    canon.push_str("experiments=");
    for e in &spec.experiments {
        canon.push_str(e);
        canon.push('\x1f');
    }
    canon.push_str("\x1eseeds=");
    for s in &spec.seeds {
        write!(canon, "{s}\x1f").unwrap();
    }
    canon.push_str("\x1eplans=");
    for p in &spec.plans {
        canon.push_str(p.as_deref().unwrap_or(CLEAN));
        canon.push('\x1f');
    }
    write!(canon, "\x1etrace={}", spec.trace).unwrap();

    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in canon.bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{hash:016x}")
}

impl ShardManifest {
    /// Builds the manifest for `shard` of `spec` (validating the spec
    /// and shard exactly as the run itself would).
    pub fn for_shard(spec: &SweepSpec, shard: Shard) -> Result<Self, crate::sweep::SweepError> {
        let cells = spec
            .shard_cells(shard)?
            .into_iter()
            .map(|(index, cell)| ManifestCell {
                index,
                stem: cell.file_stem(),
            })
            .collect();
        Ok(ShardManifest {
            shard,
            spec_hash: spec_hash(spec),
            experiments: spec.experiments.clone(),
            seeds: spec.seeds.clone(),
            plans: spec.plans.clone(),
            trace: spec.trace,
            total_cells: spec.cells()?.len(),
            cells,
        })
    }

    /// Serializes the manifest as stable, diff-friendly JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        writeln!(out, "{{").unwrap();
        writeln!(out, "  \"format\": {MANIFEST_FORMAT},").unwrap();
        writeln!(
            out,
            "  \"shard\": {{\"index\": {}, \"count\": {}}},",
            self.shard.index(),
            self.shard.count()
        )
        .unwrap();
        writeln!(out, "  \"spec_hash\": \"{}\",", self.spec_hash).unwrap();
        let str_list = |items: &[String]| {
            items
                .iter()
                .map(|s| format!("\"{}\"", json_escape(s)))
                .collect::<Vec<_>>()
                .join(", ")
        };
        writeln!(out, "  \"experiments\": [{}],", str_list(&self.experiments)).unwrap();
        writeln!(
            out,
            "  \"seeds\": [{}],",
            self.seeds
                .iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        )
        .unwrap();
        let plans: Vec<String> = self
            .plans
            .iter()
            .map(|p| p.clone().unwrap_or_else(|| CLEAN.to_string()))
            .collect();
        writeln!(out, "  \"plans\": [{}],", str_list(&plans)).unwrap();
        writeln!(out, "  \"trace\": {},", self.trace).unwrap();
        writeln!(out, "  \"total_cells\": {},", self.total_cells).unwrap();
        writeln!(out, "  \"cells\": [").unwrap();
        for (i, cell) in self.cells.iter().enumerate() {
            let comma = if i + 1 < self.cells.len() { "," } else { "" };
            writeln!(
                out,
                "    {{\"index\": {}, \"stem\": \"{}\"}}{comma}",
                cell.index,
                json_escape(&cell.stem)
            )
            .unwrap();
        }
        writeln!(out, "  ]").unwrap();
        writeln!(out, "}}").unwrap();
        out
    }

    /// Parses a manifest previously written by [`Self::to_json`].
    pub fn from_json(doc: &str) -> Result<Self, MergeError> {
        let json = json::parse(doc).map_err(|e| MergeError::Manifest(e.to_string()))?;
        let num = |j: &Json, key: &str| -> Result<u64, MergeError> {
            j.get(key)
                .and_then(Json::as_f64)
                .map(|n| n as u64)
                .ok_or_else(|| MergeError::Manifest(format!("missing number '{key}'")))
        };
        let format = num(&json, "format")?;
        if format != MANIFEST_FORMAT {
            return Err(MergeError::Manifest(format!(
                "unsupported manifest format {format} (this build reads {MANIFEST_FORMAT})"
            )));
        }
        let shard_obj = json
            .get("shard")
            .ok_or_else(|| MergeError::Manifest("missing 'shard'".into()))?;
        let shard = Shard::new(
            num(shard_obj, "index")? as usize,
            num(shard_obj, "count")? as usize,
        )
        .map_err(|e| MergeError::Manifest(e.to_string()))?;
        let str_list = |key: &str| -> Result<Vec<String>, MergeError> {
            json.get(key)
                .and_then(Json::as_arr)
                .ok_or_else(|| MergeError::Manifest(format!("missing array '{key}'")))?
                .iter()
                .map(|j| {
                    j.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| MergeError::Manifest(format!("non-string in '{key}'")))
                })
                .collect()
        };
        let seeds = json
            .get("seeds")
            .and_then(Json::as_arr)
            .ok_or_else(|| MergeError::Manifest("missing array 'seeds'".into()))?
            .iter()
            .map(|j| {
                j.as_f64()
                    .map(|n| n as u64)
                    .ok_or_else(|| MergeError::Manifest("non-number in 'seeds'".into()))
            })
            .collect::<Result<Vec<u64>, _>>()?;
        let trace = match json.get("trace") {
            Some(Json::Bool(b)) => *b,
            _ => return Err(MergeError::Manifest("missing bool 'trace'".into())),
        };
        let cells = json
            .get("cells")
            .and_then(Json::as_arr)
            .ok_or_else(|| MergeError::Manifest("missing array 'cells'".into()))?
            .iter()
            .map(|j| {
                Ok(ManifestCell {
                    index: num(j, "index")? as usize,
                    stem: j
                        .get("stem")
                        .and_then(Json::as_str)
                        .ok_or_else(|| MergeError::Manifest("cell missing 'stem'".into()))?
                        .to_string(),
                })
            })
            .collect::<Result<Vec<_>, MergeError>>()?;
        Ok(ShardManifest {
            shard,
            spec_hash: json
                .get("spec_hash")
                .and_then(Json::as_str)
                .ok_or_else(|| MergeError::Manifest("missing 'spec_hash'".into()))?
                .to_string(),
            experiments: str_list("experiments")?,
            seeds,
            plans: str_list("plans")?
                .into_iter()
                .map(|p| if p == CLEAN { None } else { Some(p) })
                .collect(),
            trace,
            total_cells: num(&json, "total_cells")? as usize,
            cells,
        })
    }
}

/// Writes one shard's artifacts into `dir`: per-cell `<stem>.txt`
/// reports (the exact [`crate::sweep::render_cell`] bytes), per-cell
/// `<stem>.trace.json` when traced, and the [`MANIFEST_FILE`].
/// `outputs` must be what [`crate::sweep::run_sweep_shard`] returned
/// for the same `(spec, shard)`.
pub fn write_shard_dir(
    dir: &Path,
    spec: &SweepSpec,
    shard: Shard,
    outputs: &[(usize, CellOutput)],
) -> Result<(), MergeError> {
    let io_err = |path: &Path, e: std::io::Error| {
        MergeError::Io(format!("cannot write {}: {e}", path.display()))
    };
    std::fs::create_dir_all(dir).map_err(|e| io_err(dir, e))?;
    for (_, out) in outputs {
        let stem = out.cell.file_stem();
        let txt = dir.join(format!("{stem}.txt"));
        std::fs::write(&txt, crate::sweep::render_cell(out)).map_err(|e| io_err(&txt, e))?;
        if let Some(trace) = &out.trace_json {
            let path = dir.join(format!("{stem}.trace.json"));
            std::fs::write(&path, trace).map_err(|e| io_err(&path, e))?;
        }
    }
    let manifest =
        ShardManifest::for_shard(spec, shard).map_err(|e| MergeError::Manifest(e.to_string()))?;
    let path = dir.join(MANIFEST_FILE);
    std::fs::write(&path, manifest.to_json()).map_err(|e| io_err(&path, e))?;
    Ok(())
}

/// One cell of a validated merge plan: where its artifacts live.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergedCell {
    /// Canonical index.
    pub index: usize,
    /// Artifact stem.
    pub stem: String,
    /// The shard directory owning the cell.
    pub dir: PathBuf,
}

/// A validated merge: every cell accounted for exactly once, in
/// canonical order.
#[derive(Debug, Clone)]
pub struct MergePlan {
    /// Parsed manifests, one per input directory (input order).
    pub manifests: Vec<ShardManifest>,
    /// Every cell of the whole matrix, in canonical index order.
    pub cells: Vec<MergedCell>,
    /// Whether the shards recorded per-cell traces.
    pub trace: bool,
}

/// Reads and cross-validates the manifests under `dirs`, returning the
/// canonical-order merge plan. Enforces spec identity, disjointness,
/// and completeness; does not yet read any cell file.
pub fn plan_merge(dirs: &[PathBuf]) -> Result<MergePlan, MergeError> {
    if dirs.is_empty() {
        return Err(MergeError::Io("no shard directories given".into()));
    }
    let mut manifests = Vec::with_capacity(dirs.len());
    for dir in dirs {
        let path = dir.join(MANIFEST_FILE);
        let doc = std::fs::read_to_string(&path)
            .map_err(|e| MergeError::Io(format!("cannot read {}: {e}", path.display())))?;
        let manifest = ShardManifest::from_json(&doc)
            .map_err(|e| MergeError::Manifest(format!("{}: {e}", path.display())))?;
        manifests.push(manifest);
    }

    let first = &manifests[0];
    for (dir, m) in dirs.iter().zip(&manifests).skip(1) {
        let mismatch = |field: &str| {
            MergeError::SpecMismatch(format!(
                "{} and {} disagree on {field}",
                dirs[0].display(),
                dir.display()
            ))
        };
        if m.spec_hash != first.spec_hash {
            return Err(mismatch("spec_hash"));
        }
        // The hash should already catch all of these; the structural
        // checks keep a collision (or a hand-edited manifest) honest.
        if m.experiments != first.experiments {
            return Err(mismatch("experiments"));
        }
        if m.seeds != first.seeds {
            return Err(mismatch("seeds"));
        }
        if m.plans != first.plans {
            return Err(mismatch("plans"));
        }
        if m.trace != first.trace {
            return Err(mismatch("trace"));
        }
        if m.total_cells != first.total_cells {
            return Err(mismatch("total_cells"));
        }
    }

    let total = first.total_cells;
    let mut owner: Vec<Option<usize>> = vec![None; total];
    let mut cells: Vec<Option<MergedCell>> = vec![None; total];
    for (d, (dir, m)) in dirs.iter().zip(&manifests).enumerate() {
        for cell in &m.cells {
            if cell.index >= total {
                return Err(MergeError::Manifest(format!(
                    "{}: cell index {} out of range (total_cells {total})",
                    dir.display(),
                    cell.index
                )));
            }
            if let Some(prev) = owner[cell.index] {
                return Err(MergeError::Overlap {
                    index: cell.index,
                    dirs: (dirs[prev].display().to_string(), dir.display().to_string()),
                });
            }
            owner[cell.index] = Some(d);
            cells[cell.index] = Some(MergedCell {
                index: cell.index,
                stem: cell.stem.clone(),
                dir: dir.clone(),
            });
        }
    }
    let missing: Vec<usize> = cells
        .iter()
        .enumerate()
        .filter(|(_, c)| c.is_none())
        .map(|(i, _)| i)
        .collect();
    if let Some(&firstmiss) = missing.first() {
        return Err(MergeError::Missing {
            count: missing.len(),
            first: firstmiss,
        });
    }
    Ok(MergePlan {
        trace: first.trace,
        manifests,
        cells: cells.into_iter().map(|c| c.expect("checked")).collect(),
    })
}

impl MergePlan {
    /// Reads one cell's report bytes.
    pub fn read_report(&self, cell: &MergedCell) -> Result<String, MergeError> {
        let path = cell.dir.join(format!("{}.txt", cell.stem));
        std::fs::read_to_string(&path)
            .map_err(|e| MergeError::Io(format!("cannot read {}: {e}", path.display())))
    }

    /// Concatenates every cell report in canonical order — byte-equal
    /// to the serial `repro sweep --jobs 1` stdout for the same spec.
    pub fn concat_reports(&self) -> Result<String, MergeError> {
        let mut out = String::new();
        for cell in &self.cells {
            out.push_str(&self.read_report(cell)?);
        }
        Ok(out)
    }

    /// Copies every cell's artifacts into `out_dir`, reproducing the
    /// serial run's `--out` directory (reports plus traces when the
    /// shards recorded them; no manifest).
    pub fn write_combined(&self, out_dir: &Path) -> Result<(), MergeError> {
        std::fs::create_dir_all(out_dir)
            .map_err(|e| MergeError::Io(format!("cannot create {}: {e}", out_dir.display())))?;
        for cell in &self.cells {
            for suffix in std::iter::once(".txt").chain(self.trace.then_some(".trace.json")) {
                let src = cell.dir.join(format!("{}{suffix}", cell.stem));
                let dst = out_dir.join(format!("{}{suffix}", cell.stem));
                std::fs::copy(&src, &dst).map_err(|e| {
                    MergeError::Io(format!(
                        "cannot copy {} -> {}: {e}",
                        src.display(),
                        dst.display()
                    ))
                })?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> SweepSpec {
        SweepSpec {
            experiments: vec!["table1".into(), "iobond".into()],
            seeds: vec![1, 2],
            plans: vec![None, Some("link-flap".into())],
            trace: false,
            jobs: 1,
        }
    }

    #[test]
    fn spec_hash_is_stable_and_field_sensitive() {
        let a = spec_hash(&spec());
        assert_eq!(a, spec_hash(&spec()), "hash must be deterministic");
        assert_eq!(a.len(), 16);
        let mut jobs = spec();
        jobs.jobs = 8;
        assert_eq!(a, spec_hash(&jobs), "jobs must not affect the hash");
        let mut seeds = spec();
        seeds.seeds = vec![1, 3];
        assert_ne!(a, spec_hash(&seeds));
        let mut trace = spec();
        trace.trace = true;
        assert_ne!(a, spec_hash(&trace));
        let mut plans = spec();
        plans.plans = vec![None];
        assert_ne!(a, spec_hash(&plans));
    }

    #[test]
    fn manifest_json_round_trips() {
        let manifest = ShardManifest::for_shard(&spec(), Shard::new(1, 3).unwrap()).unwrap();
        let parsed = ShardManifest::from_json(&manifest.to_json()).unwrap();
        assert_eq!(parsed, manifest);
        assert_eq!(parsed.total_cells, 8);
        assert!(parsed.cells.iter().all(|c| c.index % 3 == 1));
    }

    #[test]
    fn unsupported_format_is_rejected() {
        let manifest = ShardManifest::for_shard(&spec(), Shard::WHOLE).unwrap();
        let doc = manifest
            .to_json()
            .replace("\"format\": 1", "\"format\": 99");
        assert!(matches!(
            ShardManifest::from_json(&doc),
            Err(MergeError::Manifest(_))
        ));
    }
}
