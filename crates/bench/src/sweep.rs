//! Parallel deterministic sweep engine.
//!
//! A *sweep* runs the full cross product of (experiment × seed ×
//! fault plan) cells. Each cell is self-contained: it arms its fault
//! plan and enables telemetry on the worker thread that picks it up,
//! runs the experiment, and collects the report, fault stats, and
//! (optionally) a chrome-trace document. Because fault injection and
//! telemetry are thread-local ([`bmhive_faults::install`] /
//! per-thread collectors), a cell produces byte-identical output
//! whether the sweep runs on one thread or sixteen.
//!
//! Parallelism is a work-sharing pool: workers pull the next cell
//! index from a shared atomic counter and write the finished output
//! into that cell's slot, so results always come back in the
//! deterministic cell order no matter which worker ran what.

use bmhive_faults as faults;
use bmhive_telemetry as telemetry;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// The plan column for a cell that injects nothing.
pub const CLEAN: &str = "clean";

/// The default seeds a full-matrix sweep covers.
pub const DEFAULT_SEEDS: [u64; 4] = [1, 2, 3, 4];

/// What to sweep: the cross product of experiments, seeds, and fault
/// plans (with `None` meaning a clean, un-injected run).
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// Experiment ids (each must be in [`crate::EXPERIMENT_IDS`]).
    pub experiments: Vec<String>,
    /// Seeds; each experiment runs once per seed per plan.
    pub seeds: Vec<u64>,
    /// Plan column: `None` for clean, else a canned plan name or a
    /// JSON plan file path.
    pub plans: Vec<Option<String>>,
    /// Record a per-cell telemetry trace (chrome trace_event JSON).
    pub trace: bool,
    /// Worker threads; `0` and `1` both mean serial.
    pub jobs: usize,
}

impl SweepSpec {
    /// The full acceptance matrix: every experiment × the default
    /// seeds × {clean + every canned fault plan}.
    pub fn full_matrix() -> Self {
        let mut plans: Vec<Option<String>> = vec![None];
        plans.extend(
            faults::CANNED_PLAN_NAMES
                .iter()
                .map(|n| Some((*n).to_string())),
        );
        SweepSpec {
            experiments: crate::EXPERIMENT_IDS
                .iter()
                .map(|s| s.to_string())
                .collect(),
            seeds: DEFAULT_SEEDS.to_vec(),
            plans,
            trace: false,
            jobs: 1,
        }
    }

    /// Expands the spec into the cells a shard owns, each paired with
    /// its canonical (global) index, in deterministic order.
    pub fn shard_cells(&self, shard: Shard) -> Result<Vec<(usize, SweepCell)>, SweepError> {
        // Re-validate even pre-built Shard values so a hand-rolled
        // struct update cannot smuggle in an empty split.
        let shard = Shard::new(shard.index, shard.count)?;
        Ok(self
            .cells()?
            .into_iter()
            .enumerate()
            .filter(|(i, _)| shard.covers(*i))
            .collect())
    }

    /// Expands the spec into its cells, in deterministic order
    /// (experiment-major, then seed, then plan), validating every
    /// experiment id up front.
    pub fn cells(&self) -> Result<Vec<SweepCell>, SweepError> {
        for id in &self.experiments {
            if !crate::EXPERIMENT_IDS.contains(&id.as_str()) {
                return Err(SweepError::UnknownExperiment(id.clone()));
            }
        }
        let mut cells =
            Vec::with_capacity(self.experiments.len() * self.seeds.len() * self.plans.len());
        for id in &self.experiments {
            for &seed in &self.seeds {
                for plan in &self.plans {
                    cells.push(SweepCell {
                        experiment: id.clone(),
                        seed,
                        plan: plan.clone(),
                    });
                }
            }
        }
        Ok(cells)
    }
}

/// A shard selector over the canonical cell order: shard `index` of
/// `count` owns exactly the cells whose canonical index is congruent
/// to `index` modulo `count`.
///
/// Striding (rather than contiguous ranges) keeps every shard's load
/// balanced across the experiment axis — cell cost varies by orders of
/// magnitude between `table1` and `fig1` — and makes coverage checks
/// trivial: any set of shards merges completely iff the union of their
/// cell indices is exactly `0..total`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shard {
    index: usize,
    count: usize,
}

impl Shard {
    /// The degenerate single-shard split covering every cell.
    pub const WHOLE: Shard = Shard { index: 0, count: 1 };

    /// Shard `index` of `count`. Requires `count > 0` and
    /// `index < count`.
    pub fn new(index: usize, count: usize) -> Result<Shard, SweepError> {
        if count == 0 || index >= count {
            return Err(SweepError::InvalidShard { index, count });
        }
        Ok(Shard { index, count })
    }

    /// Parses the CLI form `I/N`, e.g. `0/3`.
    pub fn parse(s: &str) -> Result<Shard, SweepError> {
        let invalid = || SweepError::InvalidShardSyntax(s.to_string());
        let (index, count) = s.split_once('/').ok_or_else(invalid)?;
        let index: usize = index.trim().parse().map_err(|_| invalid())?;
        let count: usize = count.trim().parse().map_err(|_| invalid())?;
        Shard::new(index, count)
    }

    /// This shard's position.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Total shards in the split.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Whether this shard owns the cell at canonical index `i`.
    pub fn covers(&self, i: usize) -> bool {
        i % self.count == self.index
    }
}

impl fmt::Display for Shard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

/// One (experiment, seed, plan) point of a sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepCell {
    /// Experiment id.
    pub experiment: String,
    /// RNG seed for the experiment and the fault plan.
    pub seed: u64,
    /// Fault plan name/path, or `None` for a clean run.
    pub plan: Option<String>,
}

impl SweepCell {
    /// The plan column as text (`clean` when un-injected).
    pub fn plan_name(&self) -> &str {
        self.plan.as_deref().unwrap_or(CLEAN)
    }

    /// Human-readable cell label, e.g. `fig11/seed2/link-flap`.
    pub fn label(&self) -> String {
        format!("{}/seed{}/{}", self.experiment, self.seed, self.plan_name())
    }

    /// Filesystem-safe stem for per-cell artifacts, e.g.
    /// `fig11-s2-link-flap`.
    pub fn file_stem(&self) -> String {
        let plan: String = self
            .plan_name()
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || c == '-' {
                    c
                } else {
                    '_'
                }
            })
            .collect();
        format!("{}-s{}-{}", self.experiment, self.seed, plan)
    }
}

/// Everything a cell produced.
#[derive(Debug, Clone)]
pub struct CellOutput {
    /// The cell that ran.
    pub cell: SweepCell,
    /// The experiment's rendered report.
    pub report: String,
    /// `FaultStats::to_text()` when the cell armed a plan.
    pub fault_stats: Option<String>,
    /// Chrome trace_event JSON when the sweep traced.
    pub trace_json: Option<String>,
    /// Host wall time of the experiment body (excluded from the
    /// rendered output so it never breaks byte-equivalence).
    pub wall: Duration,
}

/// Why a sweep could not run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SweepError {
    /// An experiment id not in [`crate::EXPERIMENT_IDS`].
    UnknownExperiment(String),
    /// A plan that is neither canned nor a parseable JSON file.
    UnknownPlan(String),
    /// A shard selector with `count == 0` or `index >= count`.
    InvalidShard {
        /// The requested shard index.
        index: usize,
        /// The requested shard count.
        count: usize,
    },
    /// A shard argument that is not of the form `I/N`.
    InvalidShardSyntax(String),
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepError::UnknownExperiment(id) => write!(
                f,
                "unknown experiment '{id}'; known: {}",
                crate::EXPERIMENT_IDS.join(", ")
            ),
            SweepError::UnknownPlan(msg) => write!(f, "{msg}"),
            SweepError::InvalidShard { index, count } => write!(
                f,
                "invalid shard {index}/{count}: need count > 0 and index < count"
            ),
            SweepError::InvalidShardSyntax(arg) => {
                write!(
                    f,
                    "invalid shard '{arg}': expected I/N with I < N, e.g. 0/3"
                )
            }
        }
    }
}

impl std::error::Error for SweepError {}

/// Resolves a plan argument: a canned plan name first, else a JSON
/// plan file (the format `FaultPlan::to_json` writes).
pub fn resolve_plan(arg: &str) -> Result<faults::FaultPlan, SweepError> {
    if let Some(plan) = faults::canned(arg) {
        return Ok(plan);
    }
    let doc = std::fs::read_to_string(arg).map_err(|e| {
        SweepError::UnknownPlan(format!(
            "fault plan '{arg}' is neither a canned plan ({}) nor a readable file: {e}",
            faults::CANNED_PLAN_NAMES.join(", ")
        ))
    })?;
    faults::FaultPlan::from_json(&doc)
        .map_err(|e| SweepError::UnknownPlan(format!("cannot parse fault plan {arg}: {e}")))
}

/// Runs one cell on the calling thread.
///
/// The calling thread's fault context and telemetry state are
/// consumed/reset by the run: workers own their thread-local slots,
/// which is exactly what makes parallel cells independent.
pub fn run_cell(cell: &SweepCell, plan: Option<&faults::FaultPlan>, trace: bool) -> CellOutput {
    debug_assert_eq!(cell.plan.is_some(), plan.is_some());
    if trace {
        telemetry::set_enabled(true);
        telemetry::reset();
    }
    if let Some(plan) = plan {
        faults::arm(plan.clone(), cell.seed);
    }
    let start = Instant::now();
    let report = crate::run_experiment(&cell.experiment, cell.seed)
        .expect("cell experiment ids are validated by SweepSpec::cells");
    let wall = start.elapsed();
    let fault_stats = if plan.is_some() {
        faults::disarm().map(|stats| stats.to_text())
    } else {
        None
    };
    let trace_json = if trace {
        let snap = telemetry::snapshot();
        telemetry::set_enabled(false);
        telemetry::reset();
        Some(telemetry::export::chrome_trace(&snap.events))
    } else {
        None
    };
    CellOutput {
        cell: cell.clone(),
        report,
        fault_stats,
        trace_json,
        wall,
    }
}

/// Runs the whole sweep, returning one output per cell in the
/// deterministic cell order regardless of `spec.jobs`.
pub fn run_sweep(spec: &SweepSpec) -> Result<Vec<CellOutput>, SweepError> {
    Ok(run_sweep_shard(spec, Shard::WHOLE)?
        .into_iter()
        .map(|(_, out)| out)
        .collect())
}

/// Runs one shard of the sweep: only the cells the shard owns, each
/// returned with its canonical index, in canonical order regardless of
/// `spec.jobs`. Each cell's bytes are identical to what the same cell
/// produces in a whole-matrix run — cells are self-contained, so the
/// partition axis is invisible to them.
pub fn run_sweep_shard(
    spec: &SweepSpec,
    shard: Shard,
) -> Result<Vec<(usize, CellOutput)>, SweepError> {
    let cells = spec.shard_cells(shard)?;
    // Resolve each distinct plan once (a JSON-file plan would
    // otherwise be re-read and re-parsed per cell).
    let mut plans: BTreeMap<String, faults::FaultPlan> = BTreeMap::new();
    for (_, cell) in &cells {
        if let Some(name) = cell.plan.as_deref() {
            if !plans.contains_key(name) {
                plans.insert(name.to_string(), resolve_plan(name)?);
            }
        }
    }
    let plan_for = |cell: &SweepCell| cell.plan.as_deref().map(|n| &plans[n]);

    let jobs = spec.jobs.clamp(1, cells.len().max(1));
    if jobs <= 1 {
        return Ok(cells
            .iter()
            .map(|(i, cell)| (*i, run_cell(cell, plan_for(cell), spec.trace)))
            .collect());
    }

    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<CellOutput>>> = cells.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some((_, cell)) = cells.get(i) else { break };
                let out = run_cell(cell, plan_for(cell), spec.trace);
                *slots[i].lock().expect("slot poisoned") = Some(out);
            });
        }
    });
    Ok(cells
        .iter()
        .zip(slots)
        .map(|((i, _), slot)| {
            let out = slot
                .into_inner()
                .expect("slot poisoned")
                .expect("every cell index below len was claimed and ran");
            (*i, out)
        })
        .collect())
}

/// Renders a cell for stdout — the banner, the report, and the fault
/// stats block when the cell injected faults. Byte-stable.
pub fn render_cell(out: &CellOutput) -> String {
    let mut s = format!("======== {} ========\n", out.cell.label());
    s.push_str(&out.report);
    if let Some(stats) = &out.fault_stats {
        s.push_str("-------- fault stats --------\n");
        s.push_str(stats);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec(jobs: usize, trace: bool) -> SweepSpec {
        SweepSpec {
            experiments: vec!["table1".into(), "iobond".into()],
            seeds: vec![1, 2],
            plans: vec![None, Some("link-flap".into())],
            trace,
            jobs,
        }
    }

    #[test]
    fn cells_expand_in_deterministic_order() {
        let cells = tiny_spec(1, false).cells().unwrap();
        assert_eq!(cells.len(), 2 * 2 * 2);
        assert_eq!(cells[0].label(), "table1/seed1/clean");
        assert_eq!(cells[1].label(), "table1/seed1/link-flap");
        assert_eq!(cells[2].label(), "table1/seed2/clean");
        assert_eq!(cells[7].label(), "iobond/seed2/link-flap");
    }

    #[test]
    fn unknown_experiment_is_rejected_up_front() {
        let mut spec = tiny_spec(1, false);
        spec.experiments.push("fig99".into());
        assert_eq!(
            spec.cells(),
            Err(SweepError::UnknownExperiment("fig99".into()))
        );
    }

    #[test]
    fn unknown_plan_is_rejected_before_any_cell_runs() {
        let mut spec = tiny_spec(1, false);
        spec.plans = vec![Some("no-such-plan-or-file".into())];
        assert!(matches!(run_sweep(&spec), Err(SweepError::UnknownPlan(_))));
    }

    #[test]
    fn parallel_sweep_matches_serial_byte_for_byte() {
        let serial = run_sweep(&tiny_spec(1, true)).unwrap();
        let parallel = run_sweep(&tiny_spec(4, true)).unwrap();
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.cell, p.cell);
            assert_eq!(s.report, p.report, "report differs for {}", s.cell.label());
            assert_eq!(
                s.fault_stats,
                p.fault_stats,
                "fault stats differ for {}",
                s.cell.label()
            );
            assert_eq!(
                s.trace_json,
                p.trace_json,
                "trace differs for {}",
                s.cell.label()
            );
        }
    }

    #[test]
    fn clean_cells_have_no_fault_stats_and_injected_cells_do() {
        let outs = run_sweep(&tiny_spec(2, false)).unwrap();
        for out in &outs {
            assert_eq!(out.cell.plan.is_some(), out.fault_stats.is_some());
            assert!(out.trace_json.is_none());
        }
    }

    #[test]
    fn render_is_banner_report_then_stats() {
        let outs = run_sweep(&tiny_spec(1, false)).unwrap();
        let injected = outs.iter().find(|o| o.cell.plan.is_some()).unwrap();
        let text = render_cell(injected);
        assert!(text.starts_with(&format!("======== {} ========\n", injected.cell.label())));
        assert!(text.contains("-------- fault stats --------\n"));
    }

    #[test]
    fn shard_parse_accepts_valid_and_rejects_invalid() {
        assert_eq!(Shard::parse("0/3").unwrap(), Shard::new(0, 3).unwrap());
        assert_eq!(Shard::parse("2/3").unwrap().to_string(), "2/3");
        for bad in ["3/3", "4/3", "0/0", "1", "a/b", "-1/3", "1/", "/3"] {
            assert!(Shard::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn shards_partition_cells_disjointly_and_completely() {
        let spec = tiny_spec(1, false);
        let all = spec.cells().unwrap();
        for n in [1usize, 2, 3, 5] {
            let mut seen = vec![0u32; all.len()];
            for i in 0..n {
                for (idx, cell) in spec.shard_cells(Shard::new(i, n).unwrap()).unwrap() {
                    assert_eq!(idx % n, i, "cell {idx} in wrong shard {i}/{n}");
                    assert_eq!(cell, all[idx], "cell {idx} out of canonical order");
                    seen[idx] += 1;
                }
            }
            assert!(
                seen.iter().all(|&c| c == 1),
                "split {n}: coverage {seen:?} is not a partition"
            );
        }
    }

    #[test]
    fn sharded_cells_are_byte_identical_to_their_whole_run_twins() {
        let spec = tiny_spec(2, true);
        let whole = run_sweep(&spec).unwrap();
        for i in 0..3 {
            for (idx, out) in run_sweep_shard(&spec, Shard::new(i, 3).unwrap()).unwrap() {
                let twin = &whole[idx];
                assert_eq!(out.cell, twin.cell);
                assert_eq!(out.report, twin.report, "{}", out.cell.label());
                assert_eq!(out.fault_stats, twin.fault_stats);
                assert_eq!(out.trace_json, twin.trace_json);
            }
        }
    }

    #[test]
    fn invalid_shard_is_rejected() {
        let spec = tiny_spec(1, false);
        assert!(matches!(
            spec.shard_cells(Shard { index: 5, count: 3 }),
            Err(SweepError::InvalidShard { index: 5, count: 3 })
        ));
    }

    #[test]
    fn full_matrix_covers_every_experiment_and_canned_plan() {
        let spec = SweepSpec::full_matrix();
        let cells = spec.cells().unwrap();
        assert_eq!(
            cells.len(),
            crate::EXPERIMENT_IDS.len()
                * DEFAULT_SEEDS.len()
                * (1 + faults::CANNED_PLAN_NAMES.len())
        );
    }
}
