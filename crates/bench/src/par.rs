//! Deterministic intra-run parallelism: host-sharded execution with an
//! order-independent merge.
//!
//! The sweep engine (PR 7) proved the repo's determinism idiom across
//! *cells* — each worker owns thread-local telemetry and a fault
//! context, and outputs come back in canonical slot order regardless
//! of which worker finished first. This module applies the same idiom
//! *inside* a single experiment: a fleet of statistically independent
//! hosts is partitioned across a worker pool, every host draws from a
//! [`SimRng`] stream derived purely from its host index (so draws are
//! placement-independent: host 17 produces the same guests whether it
//! runs on worker 0 of 1 or worker 3 of 8), and the per-host results
//! fold back **in host-index order** on the orchestrating thread.
//!
//! # Worker ownership
//!
//! Each per-host closure invocation runs on a pool thread and owns:
//!
//! * its RNG streams — the closure derives them from the host index
//!   via [`host_stream`], never from worker identity;
//! * thread-local telemetry — the worker enables recording iff the
//!   orchestrating thread had it enabled, resets before each host, and
//!   snapshots after, so every host yields the registry an isolated
//!   serial run would have produced;
//! * a thread-local fault context — when the orchestrating thread has
//!   a plan armed, the worker arms a clone of that plan per host
//!   (backoff jitter seeded from the host index) and hands the
//!   accumulated [`FaultStats`] back for the host-ordered fold;
//! * thread-local allocation counters — `telemetry::alloc` metering
//!   inside the closure sees only this host's allocations, which is
//!   what makes a *per-worker* O(1)-memory gate meaningful.
//!
//! # Merge semantics
//!
//! The fold on the orchestrating thread is deterministic because it is
//! ordered by host index, not completion: counters add, peak gauges
//! take the max, timer histograms merge bucket-wise
//! ([`Registry::merge_from`]), fault counters add, and the `Vec` of
//! host values returns in host order so callers can fold
//! `ExitCensus`-style accumulators (and concatenate per-host report
//! sections) canonically. Histogram bucket counts are integers — their
//! merge is genuinely order-independent — while the float `sum` inside
//! each histogram is the one order-*sensitive* ingredient, which the
//! host-ordered fold pins down to the exact bytes of `--jobs 1`.
//!
//! Byte-identity across `--jobs` values is structural, not tested-in:
//! `--jobs 1` runs the *same* worker loop on a single pool thread, so
//! there is no separate serial code path to drift.
//!
//! [`Registry::merge_from`]: bmhive_telemetry::Registry::merge_from
//! [`FaultStats`]: bmhive_faults::FaultStats
//! [`SimRng`]: bmhive_sim::SimRng

use bmhive_faults as faults;
use bmhive_telemetry as telemetry;
use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

thread_local! {
    /// This thread's worker-pool width for host-sharded experiments.
    /// Defaults to 1 (serial); `repro --jobs N` raises it on the main
    /// thread only, so sweep workers and nested calls never
    /// oversubscribe.
    static JOBS: Cell<usize> = const { Cell::new(1) };
}

/// Sets the worker-pool width [`run_hosts`] uses on this thread.
/// Values are clamped to at least 1.
pub fn set_jobs(n: usize) {
    JOBS.with(|j| j.set(n.max(1)));
}

/// The worker-pool width configured for this thread (default 1).
pub fn jobs() -> usize {
    JOBS.with(|j| j.get())
}

/// Derives a per-host RNG stream from a base stream and the host
/// index — a pure function of `(base, host)` (SplitMix64 finalizer on
/// a golden-ratio-spread index), so draws are placement-independent:
/// the schedule of workers to hosts can change freely without moving a
/// single sample.
pub fn host_stream(base: u64, host: usize) -> u64 {
    let mut z = base ^ (host as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// What a pool worker hands back for one host: the closure's value
/// plus the thread-local state the orchestrator must fold in host
/// order.
struct HostRun<T> {
    value: T,
    telemetry: Option<telemetry::Snapshot>,
    fault_stats: Option<faults::FaultStats>,
}

/// Runs `f(host)` for every `host in 0..hosts` across this thread's
/// configured worker pool ([`jobs`]) and returns the values in host
/// order, having folded each host's telemetry and fault statistics
/// into the orchestrating thread's collectors in host-index order.
///
/// `seed` feeds only the per-host fault-context backoff streams (via
/// [`host_stream`]); the closure derives its own simulation streams
/// from the host index.
///
/// Work is distributed by an atomic next-host counter — the same
/// work-sharing shape as the sweep pool — so stragglers never idle a
/// worker, and results land in preallocated per-host slots so
/// completion order is irrelevant. Even `jobs = 1` runs the worker
/// loop on a (single) pool thread: per-host state handling is
/// byte-for-byte the same code at every width.
pub fn run_hosts<T, F>(hosts: usize, seed: u64, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if hosts == 0 {
        return Vec::new();
    }
    let workers = jobs().clamp(1, hosts);
    let telemetry_on = telemetry::is_enabled();
    let plan = faults::armed_plan();

    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<HostRun<T>>>> = (0..hosts).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                telemetry::set_enabled(telemetry_on);
                loop {
                    let host = next.fetch_add(1, Ordering::Relaxed);
                    if host >= hosts {
                        break;
                    }
                    if telemetry_on {
                        telemetry::reset();
                    }
                    if let Some(plan) = &plan {
                        faults::arm(plan.clone(), host_stream(seed, host));
                    }
                    let value = f(host);
                    let fault_stats = if plan.is_some() {
                        faults::disarm()
                    } else {
                        None
                    };
                    let telemetry = if telemetry_on {
                        let snap = telemetry::snapshot();
                        telemetry::reset();
                        Some(snap)
                    } else {
                        None
                    };
                    *slots[host].lock().expect("host slot poisoned") = Some(HostRun {
                        value,
                        telemetry,
                        fault_stats,
                    });
                }
            });
        }
    });

    // Host-index-ordered fold on the orchestrating thread: the one
    // place float accumulation happens, pinned to a canonical order.
    let mut values = Vec::with_capacity(hosts);
    for slot in slots {
        let run = slot
            .into_inner()
            .expect("host slot poisoned")
            .expect("worker pool exited with an unfilled host slot");
        if let Some(snap) = &run.telemetry {
            telemetry::absorb(snap);
        }
        if let Some(stats) = &run.fault_stats {
            faults::absorb_stats(stats);
        }
        values.push(run.value);
    }
    values
}

#[cfg(test)]
mod tests {
    use super::*;
    use bmhive_sim::SimRng;

    #[test]
    fn host_stream_is_a_pure_function_of_base_and_host() {
        assert_eq!(host_stream(0xce15, 7), host_stream(0xce15, 7));
        assert_ne!(host_stream(0xce15, 7), host_stream(0xce15, 8));
        assert_ne!(host_stream(0xce15, 7), host_stream(0xf161, 7));
        // Neighbouring hosts must not collapse to the same stream for
        // any small fleet.
        let streams: std::collections::BTreeSet<u64> =
            (0..1024).map(|h| host_stream(0xce15, h)).collect();
        assert_eq!(streams.len(), 1024);
    }

    #[test]
    fn jobs_defaults_to_one_and_is_thread_local() {
        assert_eq!(jobs(), 1);
        set_jobs(6);
        assert_eq!(jobs(), 6);
        let seen = std::thread::spawn(jobs).join().unwrap();
        assert_eq!(seen, 1, "fresh threads must not inherit the pool width");
        set_jobs(0);
        assert_eq!(jobs(), 1, "set_jobs clamps to at least 1");
        set_jobs(1);
    }

    #[test]
    fn run_hosts_returns_values_in_host_order_at_any_width() {
        let draws = |host: usize| {
            let mut rng = SimRng::with_stream(42, host_stream(0xce15, host));
            (0..64).map(|_| rng.next_u64()).collect::<Vec<u64>>()
        };
        set_jobs(1);
        let serial: Vec<Vec<u64>> = run_hosts(13, 42, draws);
        for width in [2, 4, 8] {
            set_jobs(width);
            let parallel = run_hosts(13, 42, draws);
            assert_eq!(serial, parallel, "width {width} diverged from serial");
        }
        set_jobs(1);
        assert_eq!(serial.len(), 13);
        assert_eq!(serial[3], draws(3), "host 3 must be placement-independent");
    }

    #[test]
    fn run_hosts_merges_worker_telemetry_in_host_order() {
        let body = |host: usize| {
            telemetry::counter("par.hosts_run", 1);
            telemetry::gauge_max("par.max_host", host as f64);
            telemetry::timer(
                "par.host_us",
                bmhive_sim::SimDuration::from_micros(host as u64 + 1),
            );
            telemetry::add_events(10);
            host
        };
        let run_at = |width: usize| {
            telemetry::set_enabled(true);
            telemetry::reset();
            set_jobs(width);
            let hosts = run_hosts(9, 7, body);
            set_jobs(1);
            let snap = telemetry::snapshot();
            telemetry::set_enabled(false);
            telemetry::reset();
            (hosts, snap)
        };
        let (hosts1, snap1) = run_at(1);
        let (hosts4, snap4) = run_at(4);
        assert_eq!(hosts1, (0..9).collect::<Vec<usize>>());
        assert_eq!(hosts1, hosts4);
        for snap in [&snap1, &snap4] {
            assert_eq!(snap.registry.counter("par.hosts_run"), 9);
            assert_eq!(snap.registry.gauge("par.max_host"), Some(8.0));
            assert_eq!(snap.registry.timer("par.host_us").unwrap().count(), 9);
            assert_eq!(snap.sim_events, 90);
        }
        assert!(
            (snap1.registry.timer("par.host_us").unwrap().mean()
                - snap4.registry.timer("par.host_us").unwrap().mean())
            .abs()
                == 0.0,
            "host-ordered histogram fold must be bit-identical across widths"
        );
    }

    #[test]
    fn run_hosts_leaves_the_callers_collector_intact() {
        telemetry::set_enabled(true);
        telemetry::reset();
        telemetry::counter("before", 3);
        set_jobs(2);
        let _ = run_hosts(4, 1, |h| {
            telemetry::counter("inside", 1);
            h
        });
        set_jobs(1);
        let snap = telemetry::snapshot();
        telemetry::set_enabled(false);
        telemetry::reset();
        assert_eq!(snap.registry.counter("before"), 3);
        assert_eq!(snap.registry.counter("inside"), 4);
    }

    #[test]
    fn run_hosts_zero_hosts_is_empty() {
        assert!(run_hosts(0, 0, |h| h).is_empty());
    }
}
