//! Benchmark harness: host wall-clock timing per experiment.
//!
//! Where [`crate::sweep`] cares about *what* the experiments print,
//! this module cares about *how fast* they run on the host. Each
//! experiment is timed over `repeats` untraced runs (taking the
//! minimum, the standard noise filter for wall-clock microbenchmarks),
//! one warmed untraced run metered for allocation count by the
//! counting `#[global_allocator]`, plus one traced run that counts
//! telemetry spans and reads the peak I/O queue depth gauge — the
//! numbers the benchmark trajectory tracks: wall time, events/sec,
//! allocs/event, peak queue depth.
//!
//! Reports serialize to a stable JSON document (`BENCH_results.json`)
//! and compare against a checked-in baseline. Because absolute wall
//! times differ across machines, the check first normalizes the
//! baseline by the ratio of total wall times, then flags any single
//! experiment whose share of the run regressed beyond the tolerance.

use bmhive_faults::json::{self, Json};
use bmhive_telemetry as telemetry;
use std::fmt::Write as _;
use std::time::Instant;

/// Timing and throughput for one experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentBench {
    /// Experiment id.
    pub experiment: String,
    /// Minimum wall time over the untraced repeats, in nanoseconds.
    pub wall_ns: u64,
    /// Telemetry spans the experiment emitted (recorded + dropped by
    /// the ring buffer) plus the sim-side event tally the drivers
    /// report — a deterministic proxy for simulated events.
    pub events: u64,
    /// `events` divided by the minimum wall time.
    pub events_per_sec: f64,
    /// Peak `iobond.peak_inflight` gauge during the traced run (0 for
    /// experiments that never touch a shadow queue).
    pub peak_queue_depth: f64,
    /// Heap allocations during one warmed, untraced run, metered by
    /// the counting `#[global_allocator]` (0 when none is installed,
    /// e.g. under plain `cargo test`). The run happens after the
    /// timing repeats, so process-wide one-time initialization is
    /// already paid and the count reflects the experiment body.
    pub allocs: u64,
    /// `allocs` divided by `events`: the steady-state allocation rate
    /// the regression gate tracks. Deterministic per binary + seed —
    /// unlike wall time it needs no machine-speed normalization.
    pub allocs_per_event: f64,
    /// Guest doorbells the PMD's published EVENT_IDX window swallowed
    /// during the traced run, summed over every suppression site
    /// (`bm.doorbells_suppressed`, `vswitch.doorbells_suppressed`, ...).
    /// Deterministic per binary + seed.
    pub doorbells_suppressed: u64,
    /// Mean events drained per `BatchRunner` tick during the traced run
    /// (`sim.batch_events / sim.batch_ticks`; 0 for experiments that
    /// don't run a batched loop). Deterministic per binary + seed.
    pub mean_batch_len: f64,
    /// Worker-pool width of the parallel timing pass (1 when the
    /// harness ran serial-only or the experiment is not host-sharded).
    pub jobs: u32,
    /// Wall-time speedup of the parallel pass over the serial one
    /// (`wall_ns / parallel wall_ns`; 0 when no parallel pass ran).
    /// Output bytes are identical at every width, so this is the same
    /// factor by which events/sec improves.
    pub parallel_speedup: f64,
}

/// A full benchmark run.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Seed every experiment ran with.
    pub seed: u64,
    /// Untraced timing repeats per experiment.
    pub repeats: u32,
    /// One entry per experiment, in run order.
    pub results: Vec<ExperimentBench>,
}

/// Runs the harness over `experiments` (each id must be in
/// [`crate::EXPERIMENT_IDS`]). Telemetry on the calling thread is
/// enabled/reset around the traced runs and left disabled. Equivalent
/// to [`run_bench_jobs`] with a single worker (no parallel pass).
pub fn run_bench(experiments: &[String], seed: u64, repeats: u32) -> Result<BenchReport, String> {
    run_bench_jobs(experiments, seed, repeats, 1)
}

/// Runs the harness over `experiments`, additionally timing the
/// host-sharded ones ([`crate::PARALLEL_EXPERIMENT_IDS`]) at `jobs`
/// workers when `jobs > 1`. The serial pass always supplies `wall_ns`
/// (so baselines stay machine-comparable); the parallel pass only
/// feeds `parallel_speedup`.
pub fn run_bench_jobs(
    experiments: &[String],
    seed: u64,
    repeats: u32,
    jobs: usize,
) -> Result<BenchReport, String> {
    for id in experiments {
        if !crate::EXPERIMENT_IDS.contains(&id.as_str()) {
            return Err(format!(
                "unknown experiment '{id}'; known: {}",
                crate::EXPERIMENT_IDS.join(", ")
            ));
        }
    }
    let repeats = repeats.max(1);
    let mut results = Vec::with_capacity(experiments.len());
    let mut report_buf = String::new();
    for id in experiments {
        // Timing runs: untraced, so the telemetry fast path stays a
        // thread-local flag check and the numbers reflect the
        // simulator, not the collector. Always serial — wall_ns is the
        // machine-comparable baseline number.
        telemetry::set_enabled(false);
        crate::par::set_jobs(1);
        let mut wall_ns = u64::MAX;
        for _ in 0..repeats {
            let start = Instant::now();
            let _ = crate::run_experiment(id, seed).expect("validated above");
            let elapsed = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            wall_ns = wall_ns.min(elapsed);
        }
        // The parallel pass: same experiment, same seed, `jobs`
        // workers. Output bytes are identical by construction, so the
        // only thing this pass contributes is its wall clock.
        let parallel = jobs > 1 && crate::PARALLEL_EXPERIMENT_IDS.contains(&id.as_str());
        let mut parallel_speedup = 0.0;
        if parallel {
            crate::par::set_jobs(jobs);
            let mut par_wall_ns = u64::MAX;
            for _ in 0..repeats {
                let start = Instant::now();
                let _ = crate::run_experiment(id, seed).expect("validated above");
                let elapsed = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
                par_wall_ns = par_wall_ns.min(elapsed);
            }
            crate::par::set_jobs(1);
            if par_wall_ns > 0 {
                parallel_speedup = wall_ns as f64 / par_wall_ns as f64;
            }
        }
        // One more untraced run, now warm, metered for allocation
        // count. Untraced so the collector's own buffers don't pollute
        // the tally; after the timing repeats so lazy one-time costs
        // (interning tables, thread-locals) are excluded. The render
        // goes into a reused, pre-sized buffer — the first (unmetered)
        // render warms its capacity — so report-string growth doesn't
        // masquerade as steady-state allocation in one-shot
        // experiments.
        report_buf.clear();
        crate::run_experiment_into(id, seed, &mut report_buf);
        let (_, allocs) = telemetry::alloc::measure_allocs(|| {
            report_buf.clear();
            crate::run_experiment_into(id, seed, &mut report_buf)
        });
        // One traced run for the deterministic counters.
        telemetry::set_enabled(true);
        telemetry::reset();
        let _ = crate::run_experiment(id, seed).expect("validated above");
        let snap = telemetry::snapshot();
        telemetry::set_enabled(false);
        telemetry::reset();
        let events = snap.events.len() as u64 + snap.dropped + snap.sim_events;
        let events_per_sec = if wall_ns > 0 {
            events as f64 / (wall_ns as f64 / 1e9)
        } else {
            0.0
        };
        let doorbells_suppressed = snap
            .registry
            .counters()
            .filter(|(name, _)| name.ends_with("doorbells_suppressed"))
            .map(|(_, v)| v)
            .sum();
        let batch_ticks = snap.registry.counter("sim.batch_ticks");
        let mean_batch_len = if batch_ticks > 0 {
            snap.registry.counter("sim.batch_events") as f64 / batch_ticks as f64
        } else {
            0.0
        };
        results.push(ExperimentBench {
            experiment: id.clone(),
            wall_ns,
            events,
            events_per_sec,
            peak_queue_depth: snap.registry.gauge("iobond.peak_inflight").unwrap_or(0.0),
            allocs,
            allocs_per_event: if events > 0 {
                allocs as f64 / events as f64
            } else {
                0.0
            },
            doorbells_suppressed,
            mean_batch_len,
            jobs: if parallel { jobs as u32 } else { 1 },
            parallel_speedup,
        });
    }
    Ok(BenchReport {
        seed,
        repeats,
        results,
    })
}

impl BenchReport {
    /// Total wall time across all experiments, in nanoseconds.
    pub fn total_wall_ns(&self) -> u64 {
        self.results.iter().map(|r| r.wall_ns).sum()
    }

    /// Serializes the report as stable, diff-friendly JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        writeln!(out, "{{").unwrap();
        writeln!(out, "  \"seed\": {},", self.seed).unwrap();
        writeln!(out, "  \"repeats\": {},", self.repeats).unwrap();
        writeln!(out, "  \"total_wall_ns\": {},", self.total_wall_ns()).unwrap();
        writeln!(out, "  \"experiments\": [").unwrap();
        for (i, r) in self.results.iter().enumerate() {
            let comma = if i + 1 < self.results.len() { "," } else { "" };
            writeln!(
                out,
                "    {{\"experiment\": \"{}\", \"wall_ns\": {}, \"events\": {}, \
                 \"events_per_sec\": {:.1}, \"peak_queue_depth\": {:.1}, \
                 \"allocs\": {}, \"allocs_per_event\": {:.4}, \
                 \"doorbells_suppressed\": {}, \"mean_batch_len\": {:.4}, \
                 \"jobs\": {}, \"parallel_speedup\": {:.2}}}{comma}",
                telemetry::export::json_escape(&r.experiment),
                r.wall_ns,
                r.events,
                r.events_per_sec,
                r.peak_queue_depth,
                r.allocs,
                r.allocs_per_event,
                r.doorbells_suppressed,
                r.mean_batch_len,
                r.jobs,
                r.parallel_speedup,
            )
            .unwrap();
        }
        writeln!(out, "  ]").unwrap();
        writeln!(out, "}}").unwrap();
        out
    }

    /// Parses a report previously written by [`Self::to_json`].
    pub fn from_json(doc: &str) -> Result<BenchReport, String> {
        let json = json::parse(doc).map_err(|e| format!("bench report: {e}"))?;
        let num = |j: &Json, key: &str| -> Result<f64, String> {
            j.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("bench report: missing number '{key}'"))
        };
        let mut results = Vec::new();
        let entries = json
            .get("experiments")
            .and_then(Json::as_arr)
            .ok_or("bench report: missing 'experiments' array")?;
        for entry in entries {
            results.push(ExperimentBench {
                experiment: entry
                    .get("experiment")
                    .and_then(Json::as_str)
                    .ok_or("bench report: missing 'experiment'")?
                    .to_string(),
                wall_ns: num(entry, "wall_ns")? as u64,
                events: num(entry, "events")? as u64,
                events_per_sec: num(entry, "events_per_sec")?,
                peak_queue_depth: num(entry, "peak_queue_depth")?,
                // Absent in pre-gate baselines: default to unmetered,
                // which disables the allocation gate for that entry.
                allocs: entry.get("allocs").and_then(Json::as_f64).unwrap_or(0.0) as u64,
                allocs_per_event: entry
                    .get("allocs_per_event")
                    .and_then(Json::as_f64)
                    .unwrap_or(0.0),
                // Absent in pre-batching baselines: default to zero,
                // which disables the suppression and batch-length
                // gates for that entry.
                doorbells_suppressed: entry
                    .get("doorbells_suppressed")
                    .and_then(Json::as_f64)
                    .unwrap_or(0.0) as u64,
                mean_batch_len: entry
                    .get("mean_batch_len")
                    .and_then(Json::as_f64)
                    .unwrap_or(0.0),
                // Absent in pre-parallelism baselines: default to a
                // serial run with no recorded speedup.
                jobs: entry.get("jobs").and_then(Json::as_f64).unwrap_or(1.0) as u32,
                parallel_speedup: entry
                    .get("parallel_speedup")
                    .and_then(Json::as_f64)
                    .unwrap_or(0.0),
            });
        }
        Ok(BenchReport {
            seed: num(&json, "seed")? as u64,
            repeats: num(&json, "repeats")? as u64 as u32,
            results,
        })
    }

    /// Compares this run against a baseline, returning one message per
    /// regression (empty = pass).
    ///
    /// Wall times are machine-dependent, so the baseline's per-
    /// experiment times are first scaled by `total(self)/total(baseline)`;
    /// an experiment regresses when its wall time exceeds its scaled
    /// baseline by more than `tolerance` (e.g. `0.25` = 25%) plus an
    /// absolute slack of [`Self::ABS_SLACK_NS`] — microsecond-scale
    /// experiments jitter past any relative bound, and a real
    /// regression in this simulator shows up in milliseconds. This
    /// catches one experiment getting disproportionately slower while
    /// staying robust to an overall faster or slower machine. The
    /// deterministic `events` counts must match exactly.
    /// Absolute jitter allowance added on top of the relative
    /// tolerance (1 ms).
    pub const ABS_SLACK_NS: f64 = 1_000_000.0;

    /// Absolute allocation-count slack for the allocs/event gate: up
    /// to this many allocations over a whole run are forgiven
    /// regardless of the per-event ratio, so experiments with a
    /// handful of events don't trip the gate on one extra report
    /// string.
    pub const ABS_SLACK_ALLOCS: f64 = 64.0;

    pub fn check_against(&self, baseline: &BenchReport, tolerance: f64) -> Vec<String> {
        let mut problems = Vec::new();
        let total = self.total_wall_ns() as f64;
        let base_total = baseline.total_wall_ns() as f64;
        if base_total <= 0.0 {
            problems.push("baseline has zero total wall time".to_string());
            return problems;
        }
        let scale = total / base_total;
        for base in &baseline.results {
            let Some(cur) = self
                .results
                .iter()
                .find(|r| r.experiment == base.experiment)
            else {
                problems.push(format!(
                    "experiment '{}' missing from this run",
                    base.experiment
                ));
                continue;
            };
            if cur.events != base.events && self.seed == baseline.seed {
                problems.push(format!(
                    "{}: event count changed {} -> {} (seed {})",
                    base.experiment, base.events, cur.events, self.seed
                ));
            }
            let allowed = base.wall_ns as f64 * scale * (1.0 + tolerance) + Self::ABS_SLACK_NS;
            if cur.wall_ns as f64 > allowed {
                problems.push(format!(
                    "{}: wall time {:.3}ms exceeds scaled baseline {:.3}ms by more than {:.0}% \
                     (baseline {:.3}ms, machine scale {:.2}x)",
                    base.experiment,
                    cur.wall_ns as f64 / 1e6,
                    allowed / 1e6 / (1.0 + tolerance),
                    tolerance * 100.0,
                    base.wall_ns as f64 / 1e6,
                    scale,
                ));
            } else if base.events > 0
                && base.events_per_sec > 0.0
                && cur.events_per_sec * (1.0 + tolerance) < base.events_per_sec / scale
                && cur.wall_ns as f64 > Self::ABS_SLACK_NS
            {
                // Throughput gate for experiments with a nonzero event
                // tally: events/sec must stay within `tolerance` of the
                // machine-scale-normalized baseline. This catches runs
                // whose wall time holds but whose event yield collapsed
                // (e.g. a driver stopped reporting its tally). The wall
                // slack rationale applies here too: microsecond-scale
                // experiments jitter past any relative bound, so the
                // gate only covers runs longer than the slack.
                problems.push(format!(
                    "{}: events/sec {:.0} regressed more than {:.0}% below the scaled \
                     baseline {:.0} (machine scale {:.2}x)",
                    base.experiment,
                    cur.events_per_sec,
                    tolerance * 100.0,
                    base.events_per_sec / scale,
                    scale,
                ));
            } else if base.allocs_per_event > 0.0
                && cur.allocs > 0
                && cur.allocs_per_event
                    > base.allocs_per_event * (1.0 + tolerance)
                        + Self::ABS_SLACK_ALLOCS / cur.events.max(1) as f64
            {
                // Allocation gate: allocs/event is already normalized
                // by experiment scale (per event) and — being a
                // deterministic count, not a time — needs no machine-
                // speed scaling. `cur.allocs > 0` keeps the gate
                // honest when no counting allocator is installed
                // (plain `cargo test` binaries read dead counters);
                // the absolute slack forgives a few stray allocations
                // in microscopic experiments where one report string
                // would otherwise dominate the ratio.
                problems.push(format!(
                    "{}: allocs/event {:.4} regressed more than {:.0}% above the baseline {:.4} \
                     ({} allocs over {} events)",
                    base.experiment,
                    cur.allocs_per_event,
                    tolerance * 100.0,
                    base.allocs_per_event,
                    cur.allocs,
                    cur.events,
                ));
            } else if base.doorbells_suppressed > 0 && cur.doorbells_suppressed == 0 {
                // Suppression gate: once an experiment demonstrates
                // doorbell coalescing, losing it entirely means the
                // EVENT_IDX high-water publication broke (every kick is
                // being scheduled and priced again). Deterministic
                // count, so no tolerance band — zero is the failure.
                problems.push(format!(
                    "{}: doorbell suppression disappeared (baseline suppressed {}, now 0)",
                    base.experiment, base.doorbells_suppressed,
                ));
            } else if base.mean_batch_len > 0.0
                && cur.mean_batch_len < base.mean_batch_len * (1.0 - tolerance)
            {
                // Batch-efficiency gate: the mean events drained per
                // tick collapsing means the hot loop degenerated back
                // toward one-pop-at-a-time dispatch. Deterministic per
                // seed, but schedule shifts legitimately move it a
                // little, so the relative tolerance applies.
                problems.push(format!(
                    "{}: mean batch length {:.2} fell more than {:.0}% below the baseline {:.2}",
                    base.experiment,
                    cur.mean_batch_len,
                    tolerance * 100.0,
                    base.mean_batch_len,
                ));
            }
        }
        problems
    }

    /// Renders a before/after comparison against `baseline` as an
    /// aligned text table: one row per experiment in this run's order
    /// plus a totals row. CI uploads this as the bench comparison
    /// artifact.
    pub fn comparison_table(&self, baseline: &BenchReport) -> String {
        let pct = |base: f64, cur: f64| {
            if base > 0.0 {
                format!("{:+.1}%", (cur / base - 1.0) * 100.0)
            } else {
                "n/a".to_string()
            }
        };
        let mut out = String::new();
        writeln!(
            out,
            "{:<10} | {:>11} | {:>11} | {:>8} | {:>13} | {:>13} | {:>8} | {:>10} | {:>10} | {:>8}",
            "experiment",
            "base ms",
            "cur ms",
            "wall",
            "base ev/s",
            "cur ev/s",
            "ev/s",
            "base a/ev",
            "cur a/ev",
            "a/ev"
        )
        .unwrap();
        for cur in &self.results {
            match baseline
                .results
                .iter()
                .find(|b| b.experiment == cur.experiment)
            {
                Some(base) => writeln!(
                    out,
                    "{:<10} | {:>11.3} | {:>11.3} | {:>8} | {:>13.0} | {:>13.0} | {:>8} | \
                     {:>10.4} | {:>10.4} | {:>8}",
                    cur.experiment,
                    base.wall_ns as f64 / 1e6,
                    cur.wall_ns as f64 / 1e6,
                    pct(base.wall_ns as f64, cur.wall_ns as f64),
                    base.events_per_sec,
                    cur.events_per_sec,
                    pct(base.events_per_sec, cur.events_per_sec),
                    base.allocs_per_event,
                    cur.allocs_per_event,
                    pct(base.allocs_per_event, cur.allocs_per_event),
                )
                .unwrap(),
                None => writeln!(
                    out,
                    "{:<10} | {:>11} | {:>11.3} | {:>8} | {:>13} | {:>13.0} | {:>8} | \
                     {:>10} | {:>10.4} | {:>8}",
                    cur.experiment,
                    "-",
                    cur.wall_ns as f64 / 1e6,
                    "new",
                    "-",
                    cur.events_per_sec,
                    "new",
                    "-",
                    cur.allocs_per_event,
                    "new",
                )
                .unwrap(),
            }
        }
        writeln!(
            out,
            "{:<10} | {:>11.3} | {:>11.3} | {:>8} |",
            "total",
            baseline.total_wall_ns() as f64 / 1e6,
            self.total_wall_ns() as f64 / 1e6,
            pct(baseline.total_wall_ns() as f64, self.total_wall_ns() as f64),
        )
        .unwrap();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(walls: &[(&str, u64)]) -> BenchReport {
        BenchReport {
            seed: 1,
            repeats: 3,
            results: walls
                .iter()
                .map(|&(id, wall_ns)| ExperimentBench {
                    experiment: id.to_string(),
                    wall_ns,
                    events: 10,
                    events_per_sec: 10.0 / (wall_ns as f64 / 1e9),
                    peak_queue_depth: 4.0,
                    allocs: 1000,
                    allocs_per_event: 100.0,
                    doorbells_suppressed: 50,
                    mean_batch_len: 4.0,
                    jobs: 1,
                    parallel_speedup: 0.0,
                })
                .collect(),
        }
    }

    #[test]
    fn bench_runs_and_counts_deterministic_events() {
        let ids = vec!["faults".to_string()];
        let a = run_bench(&ids, 1, 1).unwrap();
        let b = run_bench(&ids, 1, 1).unwrap();
        assert_eq!(a.results[0].events, b.results[0].events);
        assert!(
            a.results[0].events > 0,
            "the session emits spans when traced"
        );
        assert!(
            a.results[0].peak_queue_depth > 0.0,
            "the driven bm-guest fills a shadow queue"
        );
    }

    #[test]
    fn unknown_experiment_is_rejected() {
        assert!(run_bench(&["fig99".to_string()], 1, 1).is_err());
    }

    #[test]
    fn json_round_trips() {
        let ids = vec!["table1".to_string()];
        let report = run_bench(&ids, 7, 2).unwrap();
        let parsed = BenchReport::from_json(&report.to_json()).unwrap();
        assert_eq!(parsed.seed, 7);
        assert_eq!(parsed.repeats, 2);
        assert_eq!(parsed.results.len(), 1);
        assert_eq!(parsed.results[0].experiment, "table1");
        assert_eq!(parsed.results[0].wall_ns, report.results[0].wall_ns);
        assert_eq!(parsed.results[0].events, report.results[0].events);
        assert_eq!(parsed.results[0].allocs, report.results[0].allocs);
        assert!(
            (parsed.results[0].allocs_per_event - report.results[0].allocs_per_event).abs() < 1e-4
        );
        assert_eq!(
            parsed.results[0].doorbells_suppressed,
            report.results[0].doorbells_suppressed
        );
        assert!((parsed.results[0].mean_batch_len - report.results[0].mean_batch_len).abs() < 1e-4);
    }

    #[test]
    fn pre_gate_baseline_without_alloc_fields_still_parses() {
        let doc = r#"{
  "seed": 1,
  "repeats": 3,
  "total_wall_ns": 10,
  "experiments": [
    {"experiment": "a", "wall_ns": 10, "events": 10, "events_per_sec": 1.0, "peak_queue_depth": 0.0}
  ]
}"#;
        let parsed = BenchReport::from_json(doc).unwrap();
        assert_eq!(parsed.results[0].allocs, 0);
        assert_eq!(parsed.results[0].allocs_per_event, 0.0);
        // An unmetered baseline must not arm the alloc gate.
        let current = report(&[("a", 10)]);
        assert!(current.check_against(&parsed, 0.25).is_empty());
    }

    #[test]
    fn uniform_machine_speedup_is_not_a_regression() {
        let baseline = report(&[("a", 10_000_000), ("b", 20_000_000)]);
        // Everything 3x faster: scaled baseline shrinks with it.
        let current = report(&[("a", 3_330_000), ("b", 6_660_000)]);
        assert!(current.check_against(&baseline, 0.25).is_empty());
    }

    #[test]
    fn one_experiment_regressing_is_flagged() {
        let baseline = report(&[("a", 10_000_000), ("b", 10_000_000)]);
        // 'b' doubled while 'a' held still: total scale 1.5x, so the
        // allowed budget for b is 10ms * 1.5 * 1.25 + 1ms slack =
        // 19.75ms < 20ms.
        let current = report(&[("a", 10_000_000), ("b", 20_000_000)]);
        let problems = current.check_against(&baseline, 0.25);
        assert_eq!(problems.len(), 1, "{problems:?}");
        assert!(problems[0].starts_with("b:"), "{problems:?}");
    }

    #[test]
    fn throughput_regression_is_flagged_even_when_wall_holds() {
        let baseline = report(&[("a", 10_000_000)]);
        let mut current = report(&[("a", 10_000_000)]);
        // A different seed, so the event-count check does not apply;
        // the wall time held but half the events disappeared.
        current.seed = 2;
        current.results[0].events = 5;
        current.results[0].events_per_sec = 500.0;
        let problems = current.check_against(&baseline, 0.25);
        assert_eq!(problems.len(), 1, "{problems:?}");
        assert!(problems[0].contains("events/sec"), "{problems:?}");
    }

    #[test]
    fn alloc_regression_is_flagged_when_wall_and_throughput_hold() {
        let baseline = report(&[("a", 10_000_000)]);
        let mut current = report(&[("a", 10_000_000)]);
        // Same wall, same events, but twice the allocations per event:
        // well past 25% tolerance + the 64-alloc slack over 10 events.
        current.results[0].allocs = 2000;
        current.results[0].allocs_per_event = 200.0;
        let problems = current.check_against(&baseline, 0.25);
        assert_eq!(problems.len(), 1, "{problems:?}");
        assert!(problems[0].contains("allocs/event"), "{problems:?}");
    }

    #[test]
    fn vanished_doorbell_suppression_is_flagged() {
        let baseline = report(&[("a", 10_000_000)]);
        let mut current = report(&[("a", 10_000_000)]);
        current.results[0].doorbells_suppressed = 0;
        let problems = current.check_against(&baseline, 0.25);
        assert_eq!(problems.len(), 1, "{problems:?}");
        assert!(problems[0].contains("suppression"), "{problems:?}");
    }

    #[test]
    fn collapsed_batch_length_is_flagged_but_small_drift_is_not() {
        let baseline = report(&[("a", 10_000_000)]);
        let mut current = report(&[("a", 10_000_000)]);
        // 4.0 -> 3.5 is drift within the 25% band; 4.0 -> 1.0 is the
        // loop degenerating to single-pop dispatch.
        current.results[0].mean_batch_len = 3.5;
        assert!(current.check_against(&baseline, 0.25).is_empty());
        current.results[0].mean_batch_len = 1.0;
        let problems = current.check_against(&baseline, 0.25);
        assert_eq!(problems.len(), 1, "{problems:?}");
        assert!(problems[0].contains("batch length"), "{problems:?}");
    }

    #[test]
    fn pre_batching_baseline_does_not_arm_the_new_gates() {
        let mut baseline = report(&[("a", 10_000_000)]);
        baseline.results[0].doorbells_suppressed = 0;
        baseline.results[0].mean_batch_len = 0.0;
        let mut current = report(&[("a", 10_000_000)]);
        current.results[0].doorbells_suppressed = 0;
        current.results[0].mean_batch_len = 0.0;
        assert!(current.check_against(&baseline, 0.25).is_empty());
    }

    #[test]
    fn unmetered_run_skips_the_alloc_gate() {
        let baseline = report(&[("a", 10_000_000)]);
        let mut current = report(&[("a", 10_000_000)]);
        // No counting allocator in this binary: counts read dead.
        current.results[0].allocs = 0;
        current.results[0].allocs_per_event = 0.0;
        assert!(current.check_against(&baseline, 0.25).is_empty());
    }

    #[test]
    fn comparison_table_lists_every_experiment_and_totals() {
        let baseline = report(&[("a", 10_000_000), ("b", 20_000_000)]);
        let current = report(&[("a", 5_000_000), ("b", 20_000_000)]);
        let table = current.comparison_table(&baseline);
        assert!(table.contains("experiment"), "{table}");
        assert!(table.lines().any(|l| l.starts_with("a ")), "{table}");
        assert!(table.lines().any(|l| l.starts_with("total")), "{table}");
        assert!(table.contains("-50.0%"), "{table}");
    }

    #[test]
    fn missing_experiment_and_changed_events_are_flagged() {
        let baseline = report(&[("a", 10_000_000), ("b", 10_000_000)]);
        let mut current = report(&[("a", 10_000_000)]);
        current.results[0].events = 11;
        let problems = current.check_against(&baseline, 0.25);
        assert!(
            problems.iter().any(|p| p.contains("missing")),
            "{problems:?}"
        );
        assert!(
            problems.iter().any(|p| p.contains("event count")),
            "{problems:?}"
        );
    }
}
