//! Fig. 7 bench: SPEC CINT2006 on the three platforms.
//!
//! Criterion measures the harness itself; the *reported* numbers (the
//! figure's content) are printed by `repro fig7`. Keeping the sweep in a
//! bench guards against performance regressions in the platform models.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use bmhive_cpu::catalog::XEON_E5_2682_V4;
use bmhive_cpu::spec::SPEC_CINT2006;
use bmhive_cpu::Platform;
use bmhive_workloads::spec::run_spec;

fn bench_spec(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_spec_cint2006");
    group.bench_function("full_suite_three_platforms", |b| {
        b.iter(|| black_box(run_spec()))
    });
    let phys = Platform::Physical {
        proc: XEON_E5_2682_V4,
    };
    let bm = Platform::bm_guest(XEON_E5_2682_V4);
    let vm = Platform::vm_guest(XEON_E5_2682_V4);
    for (label, platform) in [("physical", phys), ("bm_guest", bm), ("vm_guest", vm)] {
        group.bench_function(format!("mcf_on_{label}"), |b| {
            let mcf = SPEC_CINT2006.iter().find(|x| x.name == "mcf").unwrap();
            b.iter(|| black_box(mcf.runtime_secs(black_box(&platform))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_spec);
criterion_main!(benches);
