//! Fig. 9 / Fig. 10 bench: the packet-path experiments.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use bmhive_workloads::env::GuestEnv;
use bmhive_workloads::netperf::{tcp_throughput, udp_pps, udp_pps_unrestricted};
use bmhive_workloads::sockperf::{round_trip, LatencyTool};

fn bench_pps(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_udp_pps");
    group.bench_function("capped_bm_10s", |b| {
        b.iter(|| {
            let mut env = GuestEnv::bm(1);
            black_box(udp_pps(&mut env, 10))
        })
    });
    group.bench_function("capped_vm_10s", |b| {
        b.iter(|| {
            let mut env = GuestEnv::vm(1);
            black_box(udp_pps(&mut env, 10))
        })
    });
    group.bench_function("unrestricted_bm_10s", |b| {
        b.iter(|| {
            let mut env = GuestEnv::bm(1);
            black_box(udp_pps_unrestricted(&mut env, 10))
        })
    });
    group.bench_function("tcp_throughput_bm", |b| {
        b.iter(|| {
            let mut env = GuestEnv::bm(1);
            black_box(tcp_throughput(&mut env))
        })
    });
    group.finish();

    let mut group = c.benchmark_group("fig10_latency");
    for tool in LatencyTool::ALL {
        group.bench_function(format!("{:?}_bm_1k_rtts", tool), |b| {
            b.iter(|| {
                let mut env = GuestEnv::bm(2);
                black_box(round_trip(&mut env, tool, 1_000))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pps);
criterion_main!(benches);
