//! Design-choice ablations DESIGN.md calls out: pinned vs shared vCPU
//! placement, poll-mode vs interrupt backends, and offload levels.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use bmhive_cpu::catalog::XEON_E5_2682_V4;
use bmhive_cpu::{CpuWork, Platform, VirtTax};
use bmhive_hypervisor::BackendMode;
use bmhive_iobond::OffloadConfig;
use bmhive_workloads::env::GuestEnv;
use bmhive_workloads::mariadb::{run_mariadb, QueryMix};

fn bench_ablations(c: &mut Criterion) {
    // Pinned (exclusive) vs shared vCPU placement: the Fig. 1 knob
    // applied to an application.
    let mut group = c.benchmark_group("ablation_vcpu_placement");
    for (label, tax) in [
        ("pinned", VirtTax::pinned_default()),
        ("shared", VirtTax::shared_default()),
    ] {
        group.bench_function(format!("spec_like_work_{label}"), |b| {
            let platform = Platform::Vm {
                proc: XEON_E5_2682_V4,
                tax,
            };
            let work = CpuWork {
                cycles: 1e8,
                mem_refs: 8e5,
                bytes_streamed: 0.0,
            };
            b.iter(|| black_box(platform.execute(black_box(&work))))
        });
    }
    group.bench_function("mariadb_rw_vm_guest", |b| {
        b.iter(|| {
            let mut vm = GuestEnv::vm(1);
            black_box(run_mariadb(&mut vm, QueryMix::ReadWrite))
        })
    });
    group.finish();

    // PMD vs interrupt backends.
    let mut group = c.benchmark_group("ablation_backend_mode");
    for mode in BackendMode::ALL {
        for batch in [1u32, 16, 64] {
            group.bench_function(format!("{mode:?}_batch{batch}"), |b| {
                b.iter(|| black_box(mode.added_latency(black_box(batch))))
            });
        }
    }
    group.finish();

    // Offload levels.
    let mut group = c.benchmark_group("ablation_offload");
    for (label, cfg) in [
        ("deployed", OffloadConfig::deployed()),
        ("full", OffloadConfig::full()),
    ] {
        group.bench_function(format!("base_cores_{label}"), |b| {
            b.iter(|| black_box(cfg.base_cores_needed(black_box(16), black_box(1e6))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
