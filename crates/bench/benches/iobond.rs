//! §3.4.3 / §6 bench: IO-Bond's data path, FPGA vs ASIC (the ablation
//! DESIGN.md calls out), plus Table 2 / Fig. 1 fleet sweeps.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use bmhive_cloud::fleet::{ExitCensus, PreemptionStudy};
use bmhive_cloud::limits::InstanceLimits;
use bmhive_hypervisor::BmGuestSession;
use bmhive_iobond::{steps, IoBondProfile};
use bmhive_net::{MacAddr, PacketKind};
use bmhive_sim::SimTime;

fn bench_iobond(c: &mut Criterion) {
    let mut group = c.benchmark_group("iobond_path");
    for (label, profile) in [
        ("fpga", IoBondProfile::fpga()),
        ("asic", IoBondProfile::asic()),
    ] {
        group.bench_function(format!("fig6_steps_{label}"), |b| {
            b.iter(|| black_box(steps::total_latency(&steps::tx_rx_steps(&profile, 64, 64))))
        });
        group.bench_function(format!("functional_net_send_{label}"), |b| {
            let mut session = BmGuestSession::new(
                profile,
                MacAddr::for_guest(1),
                64,
                InstanceLimits::unrestricted(),
            );
            let mut t = SimTime::ZERO;
            b.iter(|| {
                let (egress, timing) = session
                    .net_send(MacAddr::for_guest(2), PacketKind::Udp, b"bench", t)
                    .expect("send");
                t = timing.completed;
                black_box(egress.packet.payload)
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("fleet_models");
    group.sample_size(10);
    group.bench_function("table2_census_300k_vms", |b| {
        b.iter(|| {
            black_box(ExitCensus::run(
                300_000,
                &[10_000.0, 50_000.0, 100_000.0],
                1,
            ))
        })
    });
    group.bench_function("fig1_preemption_20k_vms_24h", |b| {
        b.iter(|| black_box(PreemptionStudy::run(20_000, 1)))
    });
    group.finish();
}

criterion_group!(benches, bench_iobond);
criterion_main!(benches);
