//! Substrate bench: the functional virtqueue and shadow-vring machinery
//! that every experiment rides on. Useful for spotting regressions in
//! the hot ring-processing paths.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use bmhive_cloud::blockstore::{BlockStore, StorageClass};
use bmhive_cloud::limits::InstanceLimits;
use bmhive_core::prelude::*;
use bmhive_hypervisor::BmGuestSession;
use bmhive_iobond::IoBondProfile;
use bmhive_mem::{GuestAddr, GuestRam, SgSegment};

fn bench_rings(c: &mut Criterion) {
    let mut group = c.benchmark_group("virtqueue");
    group.bench_function("driver_device_round_trip", |b| {
        let mut ram = GuestRam::new(1 << 20);
        let layout = QueueLayout::contiguous(GuestAddr::new(0x1000), 256);
        let mut driver = VirtqueueDriver::new(&mut ram, layout).unwrap();
        let mut device = Virtqueue::new(layout);
        ram.write(GuestAddr::new(0x8000), &[7u8; 256]).unwrap();
        b.iter(|| {
            let head = driver
                .add_buf(
                    &mut ram,
                    &[SgSegment::new(GuestAddr::new(0x8000), 256)],
                    &[],
                )
                .unwrap();
            let chain = device.pop_avail(&ram).unwrap().unwrap();
            device.push_used(&mut ram, chain.head, 0).unwrap();
            let reaped = driver.poll_used(&ram).unwrap().unwrap();
            assert_eq!(reaped.0, head);
            black_box(reaped)
        })
    });
    group.bench_function("blk_request_full_stack", |b| {
        let mut session = BmGuestSession::new(
            IoBondProfile::fpga(),
            MacAddr::for_guest(1),
            128,
            InstanceLimits::unrestricted(),
        );
        let mut store = BlockStore::new(StorageClass::LocalSsd, 1);
        let mut t = SimTime::ZERO;
        let mut sector = 0u64;
        b.iter(|| {
            let (status, data, timing) = session
                .blk_request(&mut store, BlkRequestType::In, sector, &[], 4096, t)
                .expect("read");
            sector += 8;
            t = timing.completed;
            black_box((status, data.len()))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_rings);
criterion_main!(benches);
