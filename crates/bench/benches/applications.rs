//! Figs. 12–16 bench: the application workloads (NGINX, MariaDB, Redis).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use bmhive_workloads::env::GuestEnv;
use bmhive_workloads::mariadb::{run_mariadb, QueryMix};
use bmhive_workloads::nginx::{run_nginx, CLIENT_SWEEP};
use bmhive_workloads::redis::{
    run_redis_clients, run_redis_sizes, CLIENT_SWEEP as REDIS_CLIENTS, SIZE_SWEEP,
};

fn bench_apps(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12_nginx");
    group.bench_function("client_sweep_bm", |b| {
        b.iter(|| {
            let mut env = GuestEnv::bm(1);
            black_box(run_nginx(&mut env, &CLIENT_SWEEP))
        })
    });
    group.bench_function("client_sweep_vm", |b| {
        b.iter(|| {
            let mut env = GuestEnv::vm(1);
            black_box(run_nginx(&mut env, &CLIENT_SWEEP))
        })
    });
    group.finish();

    let mut group = c.benchmark_group("fig13_14_mariadb");
    for mix in QueryMix::ALL {
        group.bench_function(format!("{:?}_both_guests", mix), |b| {
            b.iter(|| {
                let mut bm = GuestEnv::bm(2);
                let mut vm = GuestEnv::vm(2);
                black_box((run_mariadb(&mut bm, mix), run_mariadb(&mut vm, mix)))
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("fig15_16_redis");
    group.bench_function("client_sweep_both", |b| {
        b.iter(|| {
            let mut bm = GuestEnv::bm(3);
            let mut vm = GuestEnv::vm(3);
            black_box((
                run_redis_clients(&mut bm, &REDIS_CLIENTS, 64),
                run_redis_clients(&mut vm, &REDIS_CLIENTS, 64),
            ))
        })
    });
    group.bench_function("size_sweep_bm", |b| {
        b.iter(|| {
            let mut env = GuestEnv::bm(4);
            black_box(run_redis_sizes(&mut env, &SIZE_SWEEP, 10))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_apps);
criterion_main!(benches);
