//! Fig. 8 bench: the STREAM bandwidth model across platforms.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use bmhive_cpu::catalog::XEON_E5_2682_V4;
use bmhive_cpu::memsys::{MemorySystem, StreamKernel};
use bmhive_cpu::Platform;
use bmhive_workloads::stream::run_stream;

fn bench_stream(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_stream");
    group.bench_function("all_kernels_three_platforms", |b| {
        b.iter(|| black_box(run_stream()))
    });
    let mem = MemorySystem::paper_config();
    let bm = Platform::bm_guest(XEON_E5_2682_V4);
    for kernel in StreamKernel::ALL {
        group.bench_function(format!("triadlike_{}", kernel.name()), |b| {
            b.iter(|| black_box(mem.stream_bandwidth(black_box(&bm), kernel)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_stream);
criterion_main!(benches);
