//! Fig. 11 bench: the fio storage experiments.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use bmhive_cloud::blockstore::IoKind;
use bmhive_workloads::env::GuestEnv;
use bmhive_workloads::fio::{fio_cloud, fio_local_bandwidth, fio_local_unrestricted};

fn bench_storage(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11_storage");
    group.sample_size(20);
    for (label, kind) in [("randread", IoKind::Read), ("randwrite", IoKind::Write)] {
        group.bench_function(format!("cloud_{label}_bm_10k_ops"), |b| {
            b.iter(|| {
                let mut env = GuestEnv::bm(1);
                black_box(fio_cloud(&mut env, kind, 10_000))
            })
        });
        group.bench_function(format!("cloud_{label}_vm_10k_ops"), |b| {
            b.iter(|| {
                let mut env = GuestEnv::vm(1);
                black_box(fio_cloud(&mut env, kind, 10_000))
            })
        });
    }
    group.bench_function("local_unrestricted_bm_10k_ops", |b| {
        b.iter(|| {
            let mut env = GuestEnv::bm(2);
            black_box(fio_local_unrestricted(&mut env, IoKind::Read, 10_000))
        })
    });
    group.bench_function("local_bandwidth_bm_2k_ops", |b| {
        b.iter(|| {
            let mut env = GuestEnv::bm(3);
            black_box(fio_local_bandwidth(&mut env, 2_000))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_storage);
criterion_main!(benches);
