//! virtio-blk wire format.
//!
//! A block request is a three-part descriptor chain (virtio 1.1 §5.2.6):
//! a 16-byte readable header (type + sector), the data buffers (readable
//! for writes, writable for reads), and a one-byte writable status. The
//! compute board's EFI firmware boots the bm-guest through exactly this
//! interface (§3.2: "we extend the (EFI-based) firmware ... to recognize
//! and utilize virtio during boot"), so the format is implemented in
//! full.

use bmhive_mem::{GuestAddr, GuestRam, MemError};

/// Sector size in bytes; virtio-blk always addresses 512-byte sectors.
pub const SECTOR_SIZE: u64 = 512;

/// Block request types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BlkRequestType {
    /// Read sectors (device writes data buffers).
    In,
    /// Write sectors (device reads data buffers).
    Out,
    /// Flush the write cache.
    Flush,
    /// Any type this implementation does not support.
    Unsupported(u32),
}

impl BlkRequestType {
    /// The wire encoding.
    pub fn to_wire(self) -> u32 {
        match self {
            BlkRequestType::In => 0,
            BlkRequestType::Out => 1,
            BlkRequestType::Flush => 4,
            BlkRequestType::Unsupported(raw) => raw,
        }
    }

    /// Decodes the wire value.
    pub fn from_wire(raw: u32) -> Self {
        match raw {
            0 => BlkRequestType::In,
            1 => BlkRequestType::Out,
            4 => BlkRequestType::Flush,
            other => BlkRequestType::Unsupported(other),
        }
    }
}

/// Request completion status, written to the chain's final byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BlkStatus {
    /// Success.
    Ok,
    /// I/O error.
    IoErr,
    /// Unsupported request type.
    Unsupported,
}

impl BlkStatus {
    /// The wire encoding.
    pub fn to_wire(self) -> u8 {
        match self {
            BlkStatus::Ok => 0,
            BlkStatus::IoErr => 1,
            BlkStatus::Unsupported => 2,
        }
    }

    /// Decodes the wire value.
    ///
    /// # Panics
    ///
    /// Panics on values outside the spec's 0–2 range.
    pub fn from_wire(raw: u8) -> Self {
        match raw {
            0 => BlkStatus::Ok,
            1 => BlkStatus::IoErr,
            2 => BlkStatus::Unsupported,
            other => panic!("invalid virtio-blk status {other}"),
        }
    }
}

/// The 16-byte request header at the start of every chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlkRequestHeader {
    /// Request type.
    pub req_type: BlkRequestType,
    /// Starting sector (512-byte units).
    pub sector: u64,
}

impl BlkRequestHeader {
    /// Creates a header.
    pub fn new(req_type: BlkRequestType, sector: u64) -> Self {
        BlkRequestHeader { req_type, sector }
    }

    /// Serialises to the 16-byte wire format (type, reserved, sector).
    pub fn to_bytes(&self) -> [u8; 16] {
        let mut out = [0u8; 16];
        out[0..4].copy_from_slice(&self.req_type.to_wire().to_le_bytes());
        // Bytes 4..8 are reserved.
        out[8..16].copy_from_slice(&self.sector.to_le_bytes());
        out
    }

    /// Parses from the wire format.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is shorter than 16 bytes.
    pub fn from_bytes(bytes: &[u8]) -> Self {
        assert!(bytes.len() >= 16, "virtio-blk header too short");
        BlkRequestHeader {
            req_type: BlkRequestType::from_wire(u32::from_le_bytes(
                bytes[0..4].try_into().expect("sliced"),
            )),
            sector: u64::from_le_bytes(bytes[8..16].try_into().expect("sliced")),
        }
    }

    /// Writes the header into guest RAM at `addr`.
    ///
    /// # Errors
    ///
    /// Fails if the write exceeds guest RAM.
    pub fn write_to(&self, ram: &mut GuestRam, addr: GuestAddr) -> Result<(), MemError> {
        ram.write(addr, &self.to_bytes())
    }

    /// Reads a header from guest RAM at `addr`.
    ///
    /// # Errors
    ///
    /// Fails if the read exceeds guest RAM.
    pub fn read_from(ram: &GuestRam, addr: GuestAddr) -> Result<Self, MemError> {
        let bytes = ram.read_vec(addr, 16)?;
        Ok(Self::from_bytes(&bytes))
    }
}

/// virtio-blk device configuration (the region behind the DEVICE_CFG
/// capability). Only the universally-supported leading fields are
/// modelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlkConfig {
    /// Device capacity in 512-byte sectors.
    pub capacity_sectors: u64,
    /// Maximum segments per request.
    pub seg_max: u32,
    /// Optimal block size hint.
    pub blk_size: u32,
}

impl BlkConfig {
    /// A config for a device of `bytes` capacity.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is not a multiple of the sector size.
    pub fn with_capacity_bytes(bytes: u64) -> Self {
        assert!(
            bytes.is_multiple_of(SECTOR_SIZE),
            "capacity must be sector-aligned"
        );
        BlkConfig {
            capacity_sectors: bytes / SECTOR_SIZE,
            seg_max: 126,
            blk_size: 4096,
        }
    }

    /// Serialises the leading config fields.
    pub fn to_bytes(&self) -> [u8; 24] {
        let mut out = [0u8; 24];
        out[0..8].copy_from_slice(&self.capacity_sectors.to_le_bytes());
        out[12..16].copy_from_slice(&self.seg_max.to_le_bytes());
        out[20..24].copy_from_slice(&self.blk_size.to_le_bytes());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_types_round_trip() {
        for t in [
            BlkRequestType::In,
            BlkRequestType::Out,
            BlkRequestType::Flush,
        ] {
            assert_eq!(BlkRequestType::from_wire(t.to_wire()), t);
        }
        assert_eq!(BlkRequestType::from_wire(9), BlkRequestType::Unsupported(9));
    }

    #[test]
    fn status_round_trips() {
        for s in [BlkStatus::Ok, BlkStatus::IoErr, BlkStatus::Unsupported] {
            assert_eq!(BlkStatus::from_wire(s.to_wire()), s);
        }
    }

    #[test]
    #[should_panic(expected = "invalid virtio-blk status")]
    fn bad_status_panics() {
        BlkStatus::from_wire(7);
    }

    #[test]
    fn header_round_trips_through_ram() {
        let mut ram = GuestRam::new(1 << 16);
        let hdr = BlkRequestHeader::new(BlkRequestType::Out, 0x1234_5678_9abc);
        hdr.write_to(&mut ram, GuestAddr::new(0x80)).unwrap();
        assert_eq!(
            BlkRequestHeader::read_from(&ram, GuestAddr::new(0x80)).unwrap(),
            hdr
        );
    }

    #[test]
    fn header_wire_layout() {
        let hdr = BlkRequestHeader::new(BlkRequestType::In, 5);
        let bytes = hdr.to_bytes();
        assert_eq!(&bytes[0..4], &[0, 0, 0, 0]);
        assert_eq!(&bytes[4..8], &[0, 0, 0, 0]); // reserved
        assert_eq!(bytes[8], 5);
    }

    #[test]
    fn config_capacity_in_sectors() {
        let cfg = BlkConfig::with_capacity_bytes(40 << 30); // 40 GiB boot volume
        assert_eq!(cfg.capacity_sectors, (40 << 30) / 512);
        let bytes = cfg.to_bytes();
        assert_eq!(
            u64::from_le_bytes(bytes[0..8].try_into().unwrap()),
            cfg.capacity_sectors
        );
    }

    #[test]
    #[should_panic(expected = "sector-aligned")]
    fn misaligned_capacity_panics() {
        BlkConfig::with_capacity_bytes(1000);
    }
}
