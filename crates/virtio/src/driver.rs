//! The split virtqueue, driver (guest kernel) side.
//!
//! [`VirtqueueDriver`] does what `virtio_ring.c` does in a Linux guest:
//! maintain a free-descriptor list, format chains into the descriptor
//! table, publish heads through the avail ring, and reap completions from
//! the used ring. The simulated guests (and the bm-hypervisor's shadow
//! side in `bmhive-iobond`) both drive queues through this type, so the
//! same code path runs on the vm-guest and bm-guest platforms — the
//! interoperability requirement of §3.1.
//!
//! Like the Linux driver's `desc_state` array, the free list and the
//! per-chain descriptor bookkeeping are kept in driver-private memory,
//! never re-read from the shared rings: a misbehaving device must not be
//! able to corrupt the driver's allocator.

use crate::queue::{
    QueueLayout, VirtioError, AVAIL_F_NO_INTERRUPT, DESC_F_INDIRECT, DESC_F_NEXT, DESC_F_WRITE,
    USED_F_NO_NOTIFY,
};
use bmhive_mem::{GuestAddr, GuestRam, SgSegment};
use bmhive_telemetry as telemetry;

/// Driver-side state of one split virtqueue.
#[derive(Debug, Clone)]
pub struct VirtqueueDriver {
    layout: QueueLayout,
    /// Free descriptor indices (driver-private; popped on alloc).
    free: Vec<u16>,
    /// Outstanding chains, slab-indexed by head: each slot holds the
    /// chain's descriptor indices, and an empty slot means the head is
    /// not outstanding (a chain always has at least one descriptor).
    /// Completion drains the slot in place, so the per-chain Vec's
    /// capacity is recycled and a warmed post/reap cycle never touches
    /// the allocator — the same slab idiom as the shadow ring's
    /// inflight table.
    outstanding: Vec<Vec<u16>>,
    outstanding_len: usize,
    avail_idx: u16,
    last_used_idx: u16,
}

impl VirtqueueDriver {
    /// Initialises the rings in guest RAM (zeroing headers and the
    /// descriptor table) and returns the driver handle.
    ///
    /// # Errors
    ///
    /// Fails if the ring memory is outside guest RAM.
    pub fn new(ram: &mut GuestRam, layout: QueueLayout) -> Result<Self, VirtioError> {
        ram.write_u16(layout.avail, 0)?;
        ram.write_u16(layout.avail + 2, 0)?;
        ram.write_u16(layout.used, 0)?;
        ram.write_u16(layout.used + 2, 0)?;
        ram.fill(layout.desc, u64::from(layout.size) * 16, 0)?;
        Ok(VirtqueueDriver {
            layout,
            free: (0..layout.size).rev().collect(),
            outstanding: (0..layout.size).map(|_| Vec::new()).collect(),
            outstanding_len: 0,
            avail_idx: 0,
            last_used_idx: 0,
        })
    }

    /// The queue's memory layout.
    pub fn layout(&self) -> &QueueLayout {
        &self.layout
    }

    /// Free descriptors remaining.
    pub fn num_free(&self) -> u16 {
        self.free.len() as u16
    }

    /// Chains posted but not yet completed.
    pub fn outstanding(&self) -> usize {
        self.outstanding_len
    }

    fn write_desc(
        &self,
        ram: &mut GuestRam,
        index: u16,
        seg: SgSegment,
        flags: u16,
        next: u16,
    ) -> Result<(), VirtioError> {
        let at = self.layout.desc + u64::from(index) * 16;
        ram.write_u64(at, seg.addr.value())?;
        ram.write_u32(at + 8, seg.len)?;
        ram.write_u16(at + 12, flags)?;
        ram.write_u16(at + 14, next)?;
        Ok(())
    }

    /// Posts a buffer chain: `readable` segments (device reads) followed
    /// by `writable` segments (device writes). Returns the head index,
    /// which identifies the completion in [`poll_used`](Self::poll_used).
    ///
    /// # Errors
    ///
    /// Returns [`VirtioError::ChainTooLong`] if fewer than
    /// `readable.len() + writable.len()` descriptors are free, or a
    /// memory fault if the rings are unmapped.
    ///
    /// # Panics
    ///
    /// Panics if both lists are empty — an empty chain is meaningless.
    pub fn add_buf(
        &mut self,
        ram: &mut GuestRam,
        readable: &[SgSegment],
        writable: &[SgSegment],
    ) -> Result<u16, VirtioError> {
        let total = readable.len() + writable.len();
        assert!(total > 0, "add_buf: empty chain");
        if total > self.free.len() {
            return Err(VirtioError::ChainTooLong);
        }
        // The head is the next free index to pop; its recycled slab
        // slot collects the chain's indices in place of a fresh Vec.
        let head = self.free[self.free.len() - 1];
        let mut indices = std::mem::take(&mut self.outstanding[usize::from(head)]);
        debug_assert!(indices.is_empty(), "slab slot reused while outstanding");
        for _ in 0..total {
            indices.push(self.free.pop().expect("checked length"));
        }
        for (pos, idx) in indices.iter().enumerate() {
            let (seg, mut flags) = if pos < readable.len() {
                (readable[pos], 0)
            } else {
                (writable[pos - readable.len()], DESC_F_WRITE)
            };
            let next = if pos + 1 < total {
                flags |= DESC_F_NEXT;
                indices[pos + 1]
            } else {
                0
            };
            if let Err(e) = self.write_desc(ram, *idx, seg, flags, next) {
                // Ring memory is unmapped: hand the slot Vec back empty
                // so a later epoch can still reuse its capacity.
                indices.clear();
                self.outstanding[usize::from(head)] = indices;
                return Err(e);
            }
        }
        self.outstanding[usize::from(head)] = indices;
        self.outstanding_len += 1;
        self.publish(ram, head)?;
        Ok(head)
    }

    /// Posts a chain through a single indirect descriptor, writing the
    /// indirect table at `table_addr` (caller-provided guest memory).
    /// Indirect descriptors let one queue slot carry a long chain — the
    /// "indirect desc tables" IO-Bond fetches in Fig. 6.
    ///
    /// # Errors
    ///
    /// Returns [`VirtioError::ChainTooLong`] if no descriptor is free, or
    /// a memory fault if the table or rings are unmapped.
    ///
    /// # Panics
    ///
    /// Panics if both lists are empty.
    pub fn add_buf_indirect(
        &mut self,
        ram: &mut GuestRam,
        table_addr: GuestAddr,
        readable: &[SgSegment],
        writable: &[SgSegment],
    ) -> Result<u16, VirtioError> {
        let total = readable.len() + writable.len();
        assert!(total > 0, "add_buf_indirect: empty chain");
        let Some(head) = self.free.pop() else {
            return Err(VirtioError::ChainTooLong);
        };
        for pos in 0..total {
            let (seg, mut flags) = if pos < readable.len() {
                (readable[pos], 0)
            } else {
                (writable[pos - readable.len()], DESC_F_WRITE)
            };
            let next = if pos + 1 < total {
                flags |= DESC_F_NEXT;
                (pos + 1) as u16
            } else {
                0
            };
            let at = table_addr + (pos as u64) * 16;
            ram.write_u64(at, seg.addr.value())?;
            ram.write_u32(at + 8, seg.len)?;
            ram.write_u16(at + 12, flags)?;
            ram.write_u16(at + 14, next)?;
        }
        if let Err(e) = self.write_desc(
            ram,
            head,
            SgSegment::new(table_addr, (total * 16) as u32),
            DESC_F_INDIRECT,
            0,
        ) {
            self.free.push(head);
            return Err(e);
        }
        let slot = &mut self.outstanding[usize::from(head)];
        debug_assert!(slot.is_empty(), "slab slot reused while outstanding");
        slot.push(head);
        self.outstanding_len += 1;
        self.publish(ram, head)?;
        Ok(head)
    }

    fn publish(&mut self, ram: &mut GuestRam, head: u16) -> Result<(), VirtioError> {
        let slot = self.avail_idx % self.layout.size;
        ram.write_u16(self.layout.avail + 4 + 2 * u64::from(slot), head)?;
        self.avail_idx = self.avail_idx.wrapping_add(1);
        ram.write_u16(self.layout.avail + 2, self.avail_idx)?;
        telemetry::counter("virtio.chains_published", 1);
        Ok(())
    }

    /// Reaps one completion from the used ring: `(head, bytes_written)`.
    /// Returns `Ok(None)` if no completion is pending. Frees the chain's
    /// descriptors.
    ///
    /// # Errors
    ///
    /// Fails on guest memory faults, or with
    /// [`VirtioError::BadHeadIndex`] if the device returned an id the
    /// driver never posted (a misbehaving device).
    pub fn poll_used(&mut self, ram: &GuestRam) -> Result<Option<(u16, u32)>, VirtioError> {
        let used_idx = ram.read_u16(self.layout.used + 2)?;
        if used_idx == self.last_used_idx {
            return Ok(None);
        }
        let slot = self.last_used_idx % self.layout.size;
        let at = self.layout.used + 4 + 8 * u64::from(slot);
        let id = ram.read_u32(at)? as u16;
        let len = ram.read_u32(at + 4)?;
        self.last_used_idx = self.last_used_idx.wrapping_add(1);
        let Self {
            free, outstanding, ..
        } = self;
        let indices = outstanding
            .get_mut(usize::from(id))
            .filter(|slot| !slot.is_empty())
            .ok_or(VirtioError::BadHeadIndex(id))?;
        free.append(indices);
        self.outstanding_len -= 1;
        Ok(Some((id, len)))
    }

    /// Whether the device currently wants kicks (i.e. `USED_F_NO_NOTIFY`
    /// is clear).
    ///
    /// # Errors
    ///
    /// Fails on guest memory faults.
    pub fn kick_needed(&self, ram: &GuestRam) -> Result<bool, VirtioError> {
        Ok(ram.read_u16(self.layout.used)? & USED_F_NO_NOTIFY == 0)
    }

    /// Sets or clears the driver's `AVAIL_F_NO_INTERRUPT` hint.
    ///
    /// # Errors
    ///
    /// Fails on guest memory faults.
    pub fn set_no_interrupt(
        &mut self,
        ram: &mut GuestRam,
        no_interrupt: bool,
    ) -> Result<(), VirtioError> {
        ram.write_u16(
            self.layout.avail,
            if no_interrupt {
                AVAIL_F_NO_INTERRUPT
            } else {
                0
            },
        )?;
        Ok(())
    }

    /// The driver's avail index (next publish position).
    pub fn avail_idx(&self) -> u16 {
        self.avail_idx
    }

    /// With EVENT_IDX negotiated: sets the driver's `used_event`
    /// threshold — "interrupt me once the used index passes `value`".
    /// Setting it to `last_used + N - 1` coalesces N completions into
    /// one interrupt.
    ///
    /// # Errors
    ///
    /// Fails on guest memory faults.
    pub fn set_used_event(&mut self, ram: &mut GuestRam, value: u16) -> Result<(), VirtioError> {
        ram.write_u16(self.layout.used_event_addr(), value)?;
        Ok(())
    }

    /// With EVENT_IDX negotiated: whether publishing entries up to the
    /// current avail index (having previously published
    /// `old_avail_idx`) must kick the device, per its `avail_event`
    /// threshold.
    ///
    /// # Errors
    ///
    /// Fails on guest memory faults.
    pub fn kick_needed_event_idx(
        &self,
        ram: &GuestRam,
        old_avail_idx: u16,
    ) -> Result<bool, VirtioError> {
        let avail_event = ram.read_u16(self.layout.avail_event_addr())?;
        Ok(crate::queue::need_event(
            avail_event,
            self.avail_idx,
            old_avail_idx,
        ))
    }

    /// The driver's last-seen used index (for interrupt-coalescing
    /// thresholds).
    pub fn last_used_idx(&self) -> u16 {
        self.last_used_idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::Virtqueue;

    fn setup(size: u16) -> (GuestRam, VirtqueueDriver, Virtqueue) {
        let mut ram = GuestRam::new(1 << 20);
        let layout = QueueLayout::contiguous(GuestAddr::new(0x1000), size);
        let driver = VirtqueueDriver::new(&mut ram, layout).unwrap();
        let device = Virtqueue::new(layout);
        (ram, driver, device)
    }

    #[test]
    fn starts_with_all_descriptors_free() {
        let (_, driver, _) = setup(16);
        assert_eq!(driver.num_free(), 16);
        assert_eq!(driver.avail_idx(), 0);
        assert_eq!(driver.outstanding(), 0);
    }

    #[test]
    fn free_count_tracks_alloc_and_free() {
        let (mut ram, mut driver, mut device) = setup(8);
        driver
            .add_buf(
                &mut ram,
                &[
                    SgSegment::new(GuestAddr::new(0x5000), 4),
                    SgSegment::new(GuestAddr::new(0x5100), 4),
                ],
                &[SgSegment::new(GuestAddr::new(0x6000), 4)],
            )
            .unwrap();
        assert_eq!(driver.num_free(), 5);
        assert_eq!(driver.outstanding(), 1);
        let chain = device.pop_avail(&ram).unwrap().unwrap();
        device.push_used(&mut ram, chain.head, 0).unwrap();
        driver.poll_used(&ram).unwrap().unwrap();
        assert_eq!(driver.num_free(), 8);
        assert_eq!(driver.outstanding(), 0);
    }

    #[test]
    fn recycled_descriptors_are_never_double_allocated() {
        // Regression shape: alloc → free → alloc must never hand out a
        // descriptor that is still outstanding.
        let (mut ram, mut driver, mut device) = setup(4);
        for _ in 0..50 {
            let h1 = driver
                .add_buf(&mut ram, &[SgSegment::new(GuestAddr::new(0x5000), 4)], &[])
                .unwrap();
            let h2 = driver
                .add_buf(&mut ram, &[SgSegment::new(GuestAddr::new(0x5100), 4)], &[])
                .unwrap();
            assert_ne!(h1, h2);
            let c1 = device.pop_avail(&ram).unwrap().unwrap();
            device.push_used(&mut ram, c1.head, 0).unwrap();
            driver.poll_used(&ram).unwrap().unwrap();
            // h2 still outstanding: a fresh alloc must not collide.
            let h3 = driver
                .add_buf(&mut ram, &[SgSegment::new(GuestAddr::new(0x5200), 4)], &[])
                .unwrap();
            assert_ne!(h3, h2);
            let c2 = device.pop_avail(&ram).unwrap().unwrap();
            device.push_used(&mut ram, c2.head, 0).unwrap();
            let c3 = device.pop_avail(&ram).unwrap().unwrap();
            device.push_used(&mut ram, c3.head, 0).unwrap();
            driver.poll_used(&ram).unwrap().unwrap();
            driver.poll_used(&ram).unwrap().unwrap();
        }
        assert_eq!(driver.num_free(), 4);
    }

    #[test]
    fn add_buf_fails_when_full_without_corrupting() {
        let (mut ram, mut driver, _) = setup(2);
        driver
            .add_buf(&mut ram, &[SgSegment::new(GuestAddr::new(0x5000), 4)], &[])
            .unwrap();
        let err = driver.add_buf(
            &mut ram,
            &[
                SgSegment::new(GuestAddr::new(0x5000), 4),
                SgSegment::new(GuestAddr::new(0x5100), 4),
            ],
            &[],
        );
        assert_eq!(err, Err(VirtioError::ChainTooLong));
        assert_eq!(driver.num_free(), 1);
    }

    #[test]
    fn poll_used_empty_returns_none() {
        let (ram, mut driver, _) = setup(8);
        assert_eq!(driver.poll_used(&ram).unwrap(), None);
    }

    #[test]
    fn many_outstanding_chains_complete_out_of_order() {
        let (mut ram, mut driver, mut device) = setup(16);
        let h1 = driver
            .add_buf(&mut ram, &[SgSegment::new(GuestAddr::new(0x5000), 4)], &[])
            .unwrap();
        let h2 = driver
            .add_buf(&mut ram, &[SgSegment::new(GuestAddr::new(0x5100), 4)], &[])
            .unwrap();
        let c1 = device.pop_avail(&ram).unwrap().unwrap();
        let c2 = device.pop_avail(&ram).unwrap().unwrap();
        // Complete in reverse order.
        device.push_used(&mut ram, c2.head, 0).unwrap();
        device.push_used(&mut ram, c1.head, 0).unwrap();
        assert_eq!(driver.poll_used(&ram).unwrap(), Some((h2, 0)));
        assert_eq!(driver.poll_used(&ram).unwrap(), Some((h1, 0)));
    }

    #[test]
    #[should_panic(expected = "empty chain")]
    fn empty_chain_panics() {
        let (mut ram, mut driver, _) = setup(8);
        let _ = driver.add_buf(&mut ram, &[], &[]);
    }

    #[test]
    fn indirect_uses_one_descriptor() {
        let (mut ram, mut driver, _) = setup(4);
        driver
            .add_buf_indirect(
                &mut ram,
                GuestAddr::new(0x9000),
                &[
                    SgSegment::new(GuestAddr::new(0x5000), 4),
                    SgSegment::new(GuestAddr::new(0x5100), 4),
                    SgSegment::new(GuestAddr::new(0x5200), 4),
                ],
                &[SgSegment::new(GuestAddr::new(0x6000), 4)],
            )
            .unwrap();
        // 4 segments but only 1 queue descriptor consumed.
        assert_eq!(driver.num_free(), 3);
    }

    #[test]
    fn device_returning_unposted_id_is_an_error() {
        let (mut ram, mut driver, _) = setup(4);
        let layout = *driver.layout();
        // Forge a used entry with an id the driver never posted.
        ram.write_u32(layout.used + 4, 2).unwrap();
        ram.write_u32(layout.used + 8, 0).unwrap();
        ram.write_u16(layout.used + 2, 1).unwrap();
        assert_eq!(driver.poll_used(&ram), Err(VirtioError::BadHeadIndex(2)));
    }
}
