//! The modern virtio-pci transport.
//!
//! This register file is exactly what IO-Bond's FPGA presents on the
//! compute board's PCIe bus (§3.4.1: "The FPGA logic in IO-Bond emulates
//! a PCI interface (i.e. PCI configure space, BAR0, BAR1, PCIe Cap, etc)
//! for each virtio device"). A guest kernel's virtio-pci driver could be
//! pointed at [`VirtioPciFunction`] unchanged:
//!
//! * vendor-specific capabilities in config space advertise where the
//!   common/notify/ISR/device-config windows live inside BAR0;
//! * the common-config window implements feature negotiation and queue
//!   programming against a [`DeviceState`];
//! * writes to the notify window queue doorbell events for the owner
//!   (IO-Bond forwards them to the bm-hypervisor, KVM turns them into
//!   VM exits);
//! * reading the ISR window acknowledges the interrupt, clearing it.

use crate::devtypes::{DeviceState, DeviceType};
use bmhive_mem::GuestAddr;
use bmhive_pcie::{Capability, ConfigSpace, PciDevice};
use bmhive_sim::SimTime;
use std::collections::VecDeque;

/// Capability `cfg_type`: common configuration window.
pub const CAP_COMMON_CFG: u8 = 1;
/// Capability `cfg_type`: notify (doorbell) window.
pub const CAP_NOTIFY_CFG: u8 = 2;
/// Capability `cfg_type`: interrupt status window.
pub const CAP_ISR_CFG: u8 = 3;
/// Capability `cfg_type`: device-specific configuration window.
pub const CAP_DEVICE_CFG: u8 = 4;

/// The virtio PCI vendor ID.
pub const VIRTIO_VENDOR_ID: u16 = 0x1af4;

// BAR0 internal layout.
const COMMON_OFFSET: u64 = 0x0000;
const COMMON_LEN: u64 = 0x38;
const ISR_OFFSET: u64 = 0x1000;
const ISR_LEN: u64 = 0x4;
const DEVICE_OFFSET: u64 = 0x2000;
const DEVICE_LEN: u64 = 0x100;
const NOTIFY_OFFSET: u64 = 0x3000;
const NOTIFY_LEN: u64 = 0x400;
const NOTIFY_MULTIPLIER: u32 = 4;
const BAR0_SIZE: u32 = 0x4000;

// Common-config register offsets (virtio 1.1 §4.1.4.3).
mod common {
    pub const DEVICE_FEATURE_SELECT: u64 = 0x00;
    pub const DEVICE_FEATURE: u64 = 0x04;
    pub const DRIVER_FEATURE_SELECT: u64 = 0x08;
    pub const DRIVER_FEATURE: u64 = 0x0c;
    pub const MSIX_CONFIG: u64 = 0x10;
    pub const NUM_QUEUES: u64 = 0x12;
    pub const DEVICE_STATUS: u64 = 0x14;
    pub const CONFIG_GENERATION: u64 = 0x15;
    pub const QUEUE_SELECT: u64 = 0x16;
    pub const QUEUE_SIZE: u64 = 0x18;
    pub const QUEUE_MSIX_VECTOR: u64 = 0x1a;
    pub const QUEUE_ENABLE: u64 = 0x1c;
    pub const QUEUE_NOTIFY_OFF: u64 = 0x1e;
    pub const QUEUE_DESC_LO: u64 = 0x20;
    pub const QUEUE_DESC_HI: u64 = 0x24;
    pub const QUEUE_DRIVER_LO: u64 = 0x28;
    pub const QUEUE_DRIVER_HI: u64 = 0x2c;
    pub const QUEUE_DEVICE_LO: u64 = 0x30;
    pub const QUEUE_DEVICE_HI: u64 = 0x34;
}

fn virtio_cap(cfg_type: u8, offset: u32, length: u32) -> Capability {
    // struct virtio_pci_cap body (after the id/next header):
    // cap_len, cfg_type, bar, padding[3], offset, length.
    let mut data = vec![16u8, cfg_type, 0 /* BAR0 */, 0, 0, 0];
    data.extend_from_slice(&offset.to_le_bytes());
    data.extend_from_slice(&length.to_le_bytes());
    Capability::new(0x09, data)
}

fn virtio_notify_cap(offset: u32, length: u32, multiplier: u32) -> Capability {
    let mut cap = virtio_cap(CAP_NOTIFY_CFG, offset, length);
    cap.data[0] = 20; // cap_len includes the multiplier dword
    cap.data.extend_from_slice(&multiplier.to_le_bytes());
    cap
}

/// A doorbell (queue notification) recorded by the transport.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Notification {
    /// Which queue was kicked.
    pub queue: u16,
    /// When the kick landed.
    pub at: SimTime,
}

/// One virtio function on the PCI bus: config space + BAR0 register file
/// over a [`DeviceState`].
#[derive(Debug)]
pub struct VirtioPciFunction {
    cfg: ConfigSpace,
    state: DeviceState,
    device_config: Vec<u8>,
    device_feature_select: u32,
    driver_feature_select: u32,
    queue_select: u16,
    isr: u8,
    notifications: VecDeque<Notification>,
    register_reads: u64,
    register_writes: u64,
}

impl VirtioPciFunction {
    /// Creates a function of the given type, offering `device_features`,
    /// with `device_config` as the device-specific config window
    /// contents (e.g. [`crate::net::NetConfig::to_bytes`]).
    ///
    /// # Panics
    ///
    /// Panics if `device_config` exceeds the device window (256 bytes) or
    /// `max_queue_size` is not a power of two.
    pub fn new(
        device_type: DeviceType,
        device_features: u64,
        max_queue_size: u16,
        device_config: Vec<u8>,
    ) -> Self {
        Self::with_queue_count(
            device_type,
            device_features,
            max_queue_size,
            device_type.queue_count(),
            device_config,
        )
    }

    /// Like [`new`](Self::new) with an explicit queue count (multiqueue
    /// virtio-net exposes several rx/tx pairs).
    ///
    /// # Panics
    ///
    /// Same as [`new`](Self::new), plus a zero `queue_count`.
    pub fn with_queue_count(
        device_type: DeviceType,
        device_features: u64,
        max_queue_size: u16,
        queue_count: u16,
        device_config: Vec<u8>,
    ) -> Self {
        assert!(
            device_config.len() as u64 <= DEVICE_LEN,
            "device config exceeds window"
        );
        let cfg = ConfigSpace::builder(VIRTIO_VENDOR_ID, device_type.pci_device_id())
            .class(
                match device_type {
                    DeviceType::Net => 0x02,
                    DeviceType::Block => 0x01,
                    DeviceType::Gpu => 0x03,
                },
                0x00,
                0x00,
            )
            .revision(0x01)
            .subsystem(VIRTIO_VENDOR_ID, device_type.device_id())
            .bar_mem32(0, BAR0_SIZE)
            .capability(virtio_cap(
                CAP_COMMON_CFG,
                COMMON_OFFSET as u32,
                COMMON_LEN as u32,
            ))
            .capability(virtio_notify_cap(
                NOTIFY_OFFSET as u32,
                NOTIFY_LEN as u32,
                NOTIFY_MULTIPLIER,
            ))
            .capability(virtio_cap(CAP_ISR_CFG, ISR_OFFSET as u32, ISR_LEN as u32))
            .capability(virtio_cap(
                CAP_DEVICE_CFG,
                DEVICE_OFFSET as u32,
                DEVICE_LEN as u32,
            ))
            .build();
        VirtioPciFunction {
            cfg,
            state: DeviceState::with_queue_count(
                device_type,
                device_features,
                max_queue_size,
                queue_count,
            ),
            device_config,
            device_feature_select: 0,
            driver_feature_select: 0,
            queue_select: 0,
            isr: 0,
            notifications: VecDeque::new(),
            register_reads: 0,
            register_writes: 0,
        }
    }

    /// The negotiation state (device model side).
    pub fn state(&self) -> &DeviceState {
        &self.state
    }

    /// Mutable negotiation state (for the device model to update).
    pub fn state_mut(&mut self) -> &mut DeviceState {
        &mut self.state
    }

    /// Drains recorded doorbells, oldest first.
    pub fn take_notifications(&mut self) -> Vec<Notification> {
        self.notifications.drain(..).collect()
    }

    /// Device-side: latch an interrupt so the next ISR read reports it.
    pub fn raise_isr(&mut self) {
        self.isr |= 1;
    }

    /// Device-side: latch a configuration-change interrupt.
    pub fn raise_config_isr(&mut self) {
        self.isr |= 2;
    }

    /// Updates the device-specific config window contents and raises the
    /// config-change interrupt.
    pub fn update_device_config(&mut self, bytes: Vec<u8>) {
        assert!(
            bytes.len() as u64 <= DEVICE_LEN,
            "device config exceeds window"
        );
        self.device_config = bytes;
        self.raise_config_isr();
    }

    /// Total BAR register reads (used to charge the paper's 0.8 µs/access
    /// FPGA cost in the IO-Bond model).
    pub fn register_reads(&self) -> u64 {
        self.register_reads
    }

    /// Total BAR register writes.
    pub fn register_writes(&self) -> u64 {
        self.register_writes
    }

    fn selected_features(&self, select: u32, features: u64) -> u32 {
        match select {
            0 => features as u32,
            1 => (features >> 32) as u32,
            _ => 0,
        }
    }

    fn common_read(&mut self, offset: u64, width: u8) -> u32 {
        use common::*;
        match (offset, width) {
            (DEVICE_FEATURE_SELECT, 4) => self.device_feature_select,
            (DEVICE_FEATURE, 4) => {
                self.selected_features(self.device_feature_select, self.state.device_features())
            }
            (DRIVER_FEATURE_SELECT, 4) => self.driver_feature_select,
            (DRIVER_FEATURE, 4) => {
                self.selected_features(self.driver_feature_select, self.state.driver_features())
            }
            (MSIX_CONFIG, 2) => 0,
            (NUM_QUEUES, 2) => u32::from(self.state.queue_count()),
            (DEVICE_STATUS, 1) => u32::from(self.state.device_status()),
            (CONFIG_GENERATION, 1) => u32::from(self.state.config_generation()),
            (QUEUE_SELECT, 2) => u32::from(self.queue_select),
            (QUEUE_SIZE, 2) => u32::from(self.selected_queue().map_or(0, |q| q.size)),
            (QUEUE_MSIX_VECTOR, 2) => u32::from(self.selected_queue().map_or(0, |q| q.msix_vector)),
            (QUEUE_ENABLE, 2) => u32::from(self.selected_queue().is_some_and(|q| q.enabled)),
            (QUEUE_NOTIFY_OFF, 2) => u32::from(self.queue_select),
            (QUEUE_DESC_LO, 4) => self.selected_queue().map_or(0, |q| q.desc.value() as u32),
            (QUEUE_DESC_HI, 4) => self
                .selected_queue()
                .map_or(0, |q| (q.desc.value() >> 32) as u32),
            (QUEUE_DRIVER_LO, 4) => self.selected_queue().map_or(0, |q| q.avail.value() as u32),
            (QUEUE_DRIVER_HI, 4) => self
                .selected_queue()
                .map_or(0, |q| (q.avail.value() >> 32) as u32),
            (QUEUE_DEVICE_LO, 4) => self.selected_queue().map_or(0, |q| q.used.value() as u32),
            (QUEUE_DEVICE_HI, 4) => self
                .selected_queue()
                .map_or(0, |q| (q.used.value() >> 32) as u32),
            _ => 0,
        }
    }

    fn selected_queue(&self) -> Option<&crate::devtypes::QueueConfig> {
        if self.queue_select < self.state.queue_count() {
            Some(self.state.queue(self.queue_select))
        } else {
            None
        }
    }

    fn common_write(&mut self, offset: u64, width: u8, value: u32) {
        use common::*;
        let set_addr = |addr: &mut GuestAddr, lo: bool, value: u32| {
            let cur = addr.value();
            *addr = GuestAddr::new(if lo {
                (cur & !0xffff_ffff) | u64::from(value)
            } else {
                (cur & 0xffff_ffff) | (u64::from(value) << 32)
            });
        };
        match (offset, width) {
            (DEVICE_FEATURE_SELECT, 4) => self.device_feature_select = value,
            (DRIVER_FEATURE_SELECT, 4) => self.driver_feature_select = value,
            (DRIVER_FEATURE, 4) => {
                let prior = self.state.driver_features();
                let updated = match self.driver_feature_select {
                    0 => (prior & !0xffff_ffff) | u64::from(value),
                    1 => (prior & 0xffff_ffff) | (u64::from(value) << 32),
                    _ => prior,
                };
                // set_driver_features masks, so re-or the raw word: store
                // through the state so masking applies.
                self.state.set_driver_features(updated);
            }
            (DEVICE_STATUS, 1) => self.state.set_device_status(value as u8),
            (QUEUE_SELECT, 2) => self.queue_select = value as u16,
            (QUEUE_SIZE, 2) => {
                let max = self.state.max_queue_size();
                if self.queue_select < self.state.queue_count() {
                    let q = self.state.queue_mut(self.queue_select);
                    let requested = value as u16;
                    if requested.is_power_of_two() && requested <= max {
                        q.size = requested;
                    }
                }
            }
            (QUEUE_MSIX_VECTOR, 2) if self.queue_select < self.state.queue_count() => {
                self.state.queue_mut(self.queue_select).msix_vector = value as u16;
            }
            (QUEUE_ENABLE, 2) if self.queue_select < self.state.queue_count() => {
                self.state.queue_mut(self.queue_select).enabled = value & 1 != 0;
            }
            (QUEUE_DESC_LO, 4) | (QUEUE_DESC_HI, 4)
                if self.queue_select < self.state.queue_count() =>
            {
                let lo = offset == QUEUE_DESC_LO;
                set_addr(&mut self.state.queue_mut(self.queue_select).desc, lo, value);
            }
            (QUEUE_DRIVER_LO, 4) | (QUEUE_DRIVER_HI, 4)
                if self.queue_select < self.state.queue_count() =>
            {
                let lo = offset == QUEUE_DRIVER_LO;
                set_addr(
                    &mut self.state.queue_mut(self.queue_select).avail,
                    lo,
                    value,
                );
            }
            (QUEUE_DEVICE_LO, 4) | (QUEUE_DEVICE_HI, 4)
                if self.queue_select < self.state.queue_count() =>
            {
                let lo = offset == QUEUE_DEVICE_LO;
                set_addr(&mut self.state.queue_mut(self.queue_select).used, lo, value);
            }
            _ => {}
        }
    }

    fn device_config_read(&self, offset: u64, width: u8) -> u32 {
        let mut value = 0u32;
        for i in 0..u64::from(width) {
            let byte = self
                .device_config
                .get((offset + i) as usize)
                .copied()
                .unwrap_or(0);
            value |= u32::from(byte) << (8 * i);
        }
        value
    }
}

impl PciDevice for VirtioPciFunction {
    fn config(&self) -> &ConfigSpace {
        &self.cfg
    }

    fn config_mut(&mut self) -> &mut ConfigSpace {
        &mut self.cfg
    }

    fn bar_read(&mut self, bar: usize, offset: u64, width: u8, _now: SimTime) -> u32 {
        if bar != 0 {
            return u32::MAX >> (32 - 8 * u32::from(width));
        }
        self.register_reads += 1;
        match offset {
            o if (COMMON_OFFSET..COMMON_OFFSET + COMMON_LEN).contains(&o) => {
                self.common_read(o - COMMON_OFFSET, width)
            }
            o if (ISR_OFFSET..ISR_OFFSET + ISR_LEN).contains(&o) => {
                // Reading the ISR acknowledges and clears it.
                let isr = u32::from(self.isr);
                self.isr = 0;
                isr
            }
            o if (DEVICE_OFFSET..DEVICE_OFFSET + DEVICE_LEN).contains(&o) => {
                self.device_config_read(o - DEVICE_OFFSET, width)
            }
            _ => 0,
        }
    }

    fn bar_write(&mut self, bar: usize, offset: u64, width: u8, value: u32, now: SimTime) {
        if bar != 0 {
            return;
        }
        self.register_writes += 1;
        match offset {
            o if (COMMON_OFFSET..COMMON_OFFSET + COMMON_LEN).contains(&o) => {
                self.common_write(o - COMMON_OFFSET, width, value);
            }
            o if (NOTIFY_OFFSET..NOTIFY_OFFSET + NOTIFY_LEN).contains(&o) => {
                let queue = ((o - NOTIFY_OFFSET) / u64::from(NOTIFY_MULTIPLIER)) as u16;
                if queue < self.state.queue_count() {
                    self.notifications
                        .push_back(Notification { queue, at: now });
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devtypes::{status, Feature};
    use crate::net::NetConfig;

    fn net_function() -> VirtioPciFunction {
        VirtioPciFunction::new(
            DeviceType::Net,
            Feature::NetMac as u64 | Feature::RingIndirectDesc as u64,
            256,
            NetConfig::with_mac([2, 0, 0, 0, 0, 1]).to_bytes().to_vec(),
        )
    }

    #[test]
    fn config_space_advertises_virtio_caps() {
        let f = net_function();
        let caps = f.config().capabilities();
        let vendor_caps: Vec<_> = caps.iter().filter(|(_, id)| *id == 0x09).collect();
        assert_eq!(vendor_caps.len(), 4);
        assert_eq!(f.config().vendor_id(), VIRTIO_VENDOR_ID);
        assert_eq!(f.config().device_id(), 0x1041);
        // The cfg_type byte of each cap (offset + 3) covers all four types.
        let mut types: Vec<u8> = vendor_caps
            .iter()
            .map(|(off, _)| f.config().read(off + 3, 1) as u8)
            .collect();
        types.sort_unstable();
        assert_eq!(
            types,
            vec![CAP_COMMON_CFG, CAP_NOTIFY_CFG, CAP_ISR_CFG, CAP_DEVICE_CFG]
        );
    }

    #[test]
    fn feature_negotiation_through_registers() {
        let mut f = net_function();
        // Read device features: low then high word.
        f.bar_write(0, common::DEVICE_FEATURE_SELECT, 4, 0, SimTime::ZERO);
        let lo = f.bar_read(0, common::DEVICE_FEATURE, 4, SimTime::ZERO);
        f.bar_write(0, common::DEVICE_FEATURE_SELECT, 4, 1, SimTime::ZERO);
        let hi = f.bar_read(0, common::DEVICE_FEATURE, 4, SimTime::ZERO);
        let features = u64::from(lo) | (u64::from(hi) << 32);
        assert!(features & Feature::NetMac as u64 != 0);
        assert!(features & Feature::Version1 as u64 != 0);
        // Accept them.
        f.bar_write(0, common::DRIVER_FEATURE_SELECT, 4, 0, SimTime::ZERO);
        f.bar_write(0, common::DRIVER_FEATURE, 4, lo, SimTime::ZERO);
        f.bar_write(0, common::DRIVER_FEATURE_SELECT, 4, 1, SimTime::ZERO);
        f.bar_write(0, common::DRIVER_FEATURE, 4, hi, SimTime::ZERO);
        assert_eq!(f.state().negotiated_features(), features);
    }

    #[test]
    fn queue_programming_through_registers() {
        let mut f = net_function();
        f.bar_write(0, common::QUEUE_SELECT, 2, 1, SimTime::ZERO); // tx queue
        assert_eq!(f.bar_read(0, common::QUEUE_SIZE, 2, SimTime::ZERO), 256);
        f.bar_write(0, common::QUEUE_SIZE, 2, 128, SimTime::ZERO);
        f.bar_write(0, common::QUEUE_DESC_LO, 4, 0x0001_0000, SimTime::ZERO);
        f.bar_write(0, common::QUEUE_DESC_HI, 4, 0x1, SimTime::ZERO);
        f.bar_write(0, common::QUEUE_DRIVER_LO, 4, 0x0002_0000, SimTime::ZERO);
        f.bar_write(0, common::QUEUE_DEVICE_LO, 4, 0x0003_0000, SimTime::ZERO);
        f.bar_write(0, common::QUEUE_ENABLE, 2, 1, SimTime::ZERO);
        let q = f.state().queue(1);
        assert_eq!(q.size, 128);
        assert_eq!(q.desc, GuestAddr::new(0x1_0001_0000));
        assert_eq!(q.avail, GuestAddr::new(0x0002_0000));
        assert_eq!(q.used, GuestAddr::new(0x0003_0000));
        assert!(q.enabled);
        // Reads reflect the programmed values.
        assert_eq!(f.bar_read(0, common::QUEUE_DESC_HI, 4, SimTime::ZERO), 1);
        assert_eq!(f.bar_read(0, common::QUEUE_ENABLE, 2, SimTime::ZERO), 1);
    }

    #[test]
    fn invalid_queue_size_is_ignored() {
        let mut f = net_function();
        f.bar_write(0, common::QUEUE_SELECT, 2, 0, SimTime::ZERO);
        f.bar_write(0, common::QUEUE_SIZE, 2, 100, SimTime::ZERO); // not pow2
        assert_eq!(f.state().queue(0).size, 256);
        f.bar_write(0, common::QUEUE_SIZE, 2, 512, SimTime::ZERO); // > max
        assert_eq!(f.state().queue(0).size, 256);
    }

    #[test]
    fn status_write_and_reset() {
        let mut f = net_function();
        f.bar_write(
            0,
            common::DEVICE_STATUS,
            1,
            u32::from(status::ACKNOWLEDGE),
            SimTime::ZERO,
        );
        assert_eq!(
            f.bar_read(0, common::DEVICE_STATUS, 1, SimTime::ZERO),
            u32::from(status::ACKNOWLEDGE)
        );
        f.bar_write(0, common::DEVICE_STATUS, 1, 0, SimTime::ZERO);
        assert_eq!(f.bar_read(0, common::DEVICE_STATUS, 1, SimTime::ZERO), 0);
        assert_eq!(f.state().driver_features(), 0);
    }

    #[test]
    fn notify_writes_are_recorded_with_time() {
        let mut f = net_function();
        f.bar_write(0, NOTIFY_OFFSET, 2, 0, SimTime::from_micros(3));
        f.bar_write(0, NOTIFY_OFFSET + 4, 2, 0, SimTime::from_micros(5));
        // Out-of-range queue index is dropped.
        f.bar_write(0, NOTIFY_OFFSET + 4 * 9, 2, 0, SimTime::from_micros(6));
        let notes = f.take_notifications();
        assert_eq!(notes.len(), 2);
        assert_eq!(
            notes[0],
            Notification {
                queue: 0,
                at: SimTime::from_micros(3)
            }
        );
        assert_eq!(notes[1].queue, 1);
        assert!(f.take_notifications().is_empty());
    }

    #[test]
    fn isr_read_clears() {
        let mut f = net_function();
        assert_eq!(f.bar_read(0, ISR_OFFSET, 1, SimTime::ZERO), 0);
        f.raise_isr();
        assert_eq!(f.bar_read(0, ISR_OFFSET, 1, SimTime::ZERO), 1);
        assert_eq!(f.bar_read(0, ISR_OFFSET, 1, SimTime::ZERO), 0);
        f.raise_config_isr();
        assert_eq!(f.bar_read(0, ISR_OFFSET, 1, SimTime::ZERO), 2);
    }

    #[test]
    fn device_config_window_returns_mac() {
        let mut f = net_function();
        let b0 = f.bar_read(0, DEVICE_OFFSET, 4, SimTime::ZERO);
        assert_eq!(b0 & 0xff, 2); // first MAC byte
        let mtu = f.bar_read(0, DEVICE_OFFSET + 10, 2, SimTime::ZERO);
        assert_eq!(mtu, 1500);
        // Reads beyond the config contents return zero.
        assert_eq!(f.bar_read(0, DEVICE_OFFSET + 0x80, 4, SimTime::ZERO), 0);
    }

    #[test]
    fn register_access_counters() {
        let mut f = net_function();
        f.bar_read(0, common::DEVICE_STATUS, 1, SimTime::ZERO);
        f.bar_write(0, common::DEVICE_STATUS, 1, 1, SimTime::ZERO);
        f.bar_write(0, NOTIFY_OFFSET, 2, 0, SimTime::ZERO);
        assert_eq!(f.register_reads(), 1);
        assert_eq!(f.register_writes(), 2);
    }

    #[test]
    fn num_queues_register() {
        let mut f = net_function();
        assert_eq!(f.bar_read(0, common::NUM_QUEUES, 2, SimTime::ZERO), 2);
    }

    #[test]
    fn config_update_raises_config_isr() {
        let mut f = net_function();
        let mut cfg = NetConfig::with_mac([2, 0, 0, 0, 0, 1]);
        cfg.status = 0; // link down event
        f.update_device_config(cfg.to_bytes().to_vec());
        assert_eq!(f.bar_read(0, ISR_OFFSET, 1, SimTime::ZERO), 2);
        assert_eq!(f.bar_read(0, DEVICE_OFFSET + 6, 2, SimTime::ZERO), 0);
    }
}
