//! A functional virtio implementation.
//!
//! Virtio is the contract that makes BM-Hive interoperable with the
//! VM-based cloud (§3.1): the same guest image drives the same
//! para-virtual devices whether its "hypervisor" is KVM or a compute
//! board behind IO-Bond. This crate implements that contract as real,
//! runnable logic — descriptors are chained, rings wrap, buffers are
//! copied — over the simulated guest memory of [`bmhive_mem`]:
//!
//! * [`queue`] — the split virtqueue from the device side:
//!   [`Virtqueue::pop_avail`] walks descriptor chains (direct and
//!   indirect) out of guest RAM, [`Virtqueue::push_used`] completes them.
//! * [`driver`] — the guest-kernel side: [`VirtqueueDriver`] formats
//!   descriptor tables, posts buffers, and reaps completions, exactly as
//!   a virtio kernel driver would.
//! * [`devtypes`] — device status / feature negotiation state machine
//!   shared by every device ([`DeviceState`]).
//! * [`net`] / [`blk`] — the virtio-net and virtio-blk wire formats
//!   (headers, config layouts, request status codes).
//! * [`pci`] — the modern virtio-pci transport: the common-config
//!   register file, notify/ISR/device-config BAR windows, and the
//!   vendor capabilities that advertise them. This register file is what
//!   IO-Bond's FPGA emulates on the compute board's PCIe bus (§3.4.1).
//!
//! # Example: a driver/device round trip over shared guest RAM
//!
//! ```
//! use bmhive_mem::{GuestAddr, GuestRam, SgSegment};
//! use bmhive_virtio::{QueueLayout, Virtqueue, VirtqueueDriver};
//!
//! let mut ram = GuestRam::new(1 << 20);
//! let layout = QueueLayout::contiguous(GuestAddr::new(0x1000), 8);
//! let mut driver = VirtqueueDriver::new(&mut ram, layout).unwrap();
//! let mut device = Virtqueue::new(layout);
//!
//! // Driver posts a 4-byte readable buffer.
//! ram.write(GuestAddr::new(0x8000), b"ping").unwrap();
//! let head = driver
//!     .add_buf(&mut ram, &[SgSegment::new(GuestAddr::new(0x8000), 4)], &[])
//!     .unwrap();
//!
//! // Device pops it, reads the payload, completes it.
//! let chain = device.pop_avail(&ram).unwrap().unwrap();
//! assert_eq!(chain.readable.gather(&ram).unwrap(), b"ping");
//! device.push_used(&mut ram, chain.head, 0).unwrap();
//!
//! // Driver reaps the completion.
//! assert_eq!(driver.poll_used(&ram).unwrap(), Some((head, 0)));
//! ```

pub mod blk;
pub mod devtypes;
pub mod driver;
pub mod net;
pub mod packed;
pub mod pci;
pub mod queue;

pub use blk::{BlkConfig, BlkRequestHeader, BlkRequestType, BlkStatus, SECTOR_SIZE};
pub use devtypes::{status, DeviceState, DeviceType, Feature};
pub use driver::VirtqueueDriver;
pub use net::{deliver_merged, MergedDelivery, NetConfig, VirtioNetHeader, VIRTIO_NET_HDR_LEN};
pub use packed::{PackedChain, PackedDevice, PackedDriver, PackedLayout};
pub use pci::{VirtioPciFunction, CAP_COMMON_CFG, CAP_DEVICE_CFG, CAP_ISR_CFG, CAP_NOTIFY_CFG};
pub use queue::{DescChain, QueueLayout, VirtioError, Virtqueue};
