//! The packed virtqueue (virtio 1.1 §2.7).
//!
//! The split ring of [`crate::queue`] is what BM-Hive deploys, but a
//! production virtio stack also carries the packed layout: a single
//! descriptor ring where availability is signalled by a pair of
//! AVAIL/USED flag bits matched against per-side *wrap counters*,
//! halving the cache lines touched per operation. IO-Bond's design note
//! that other device types "can be easily extended" (§3.3) applies to
//! ring formats too — the shadow-vring idea is format-agnostic, so this
//! module implements the full driver and device sides with chain
//! support, out-of-order completion, and wrap-around.
//!
//! Layout of one descriptor (16 bytes): addr u64, len u32, id u16,
//! flags u16. Flags: NEXT(1), WRITE(2), AVAIL(1<<7), USED(1<<15).

use crate::queue::VirtioError;
use bmhive_mem::{GuestAddr, GuestRam, SgList, SgSegment};
use std::collections::HashMap;

/// Descriptor flag: chain continues in the next slot.
pub const PACKED_F_NEXT: u16 = 1;
/// Descriptor flag: device-writable buffer.
pub const PACKED_F_WRITE: u16 = 2;
/// Availability bit.
pub const PACKED_F_AVAIL: u16 = 1 << 7;
/// Used bit.
pub const PACKED_F_USED: u16 = 1 << 15;

const DESC_BYTES: u64 = 16;

/// Where a packed ring lives. Unlike the split ring, the size need not
/// be a power of two.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PackedLayout {
    /// Ring size in descriptors (1..=32768).
    pub size: u16,
    /// Descriptor ring base.
    pub desc: GuestAddr,
}

impl PackedLayout {
    /// Lays the ring out at `base`.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero or exceeds 32768, or `base` is not
    /// 16-byte aligned.
    pub fn new(base: GuestAddr, size: u16) -> Self {
        assert!(size > 0 && size <= 32768, "packed ring size out of range");
        assert!(
            base.is_aligned(16),
            "packed ring base must be 16-byte aligned"
        );
        PackedLayout { size, desc: base }
    }

    fn slot(&self, index: u16) -> GuestAddr {
        self.desc + u64::from(index) * DESC_BYTES
    }

    /// Ring footprint in bytes.
    pub fn footprint(&self) -> u64 {
        u64::from(self.size) * DESC_BYTES
    }
}

fn write_slot(
    ram: &mut GuestRam,
    at: GuestAddr,
    addr: u64,
    len: u32,
    id: u16,
    flags: u16,
) -> Result<(), VirtioError> {
    ram.write_u64(at, addr)?;
    ram.write_u32(at + 8, len)?;
    ram.write_u16(at + 12, id)?;
    ram.write_u16(at + 14, flags)?;
    Ok(())
}

#[derive(Debug, Clone, Copy)]
struct Slot {
    addr: u64,
    len: u32,
    id: u16,
    flags: u16,
}

fn read_slot(ram: &GuestRam, at: GuestAddr) -> Result<Slot, VirtioError> {
    Ok(Slot {
        addr: ram.read_u64(at)?,
        len: ram.read_u32(at + 8)?,
        id: ram.read_u16(at + 12)?,
        flags: ram.read_u16(at + 14)?,
    })
}

/// Whether a descriptor with `flags` is available to a device whose
/// wrap counter is `wrap` (§2.7.1: avail != used and avail == wrap).
fn is_avail(flags: u16, wrap: bool) -> bool {
    let avail = flags & PACKED_F_AVAIL != 0;
    let used = flags & PACKED_F_USED != 0;
    avail != used && avail == wrap
}

/// Whether a descriptor with `flags` has been used, from the driver's
/// perspective with wrap counter `wrap` (avail == used == wrap).
fn is_used(flags: u16, wrap: bool) -> bool {
    let avail = flags & PACKED_F_AVAIL != 0;
    let used = flags & PACKED_F_USED != 0;
    avail == used && used == wrap
}

/// A chain the device popped from a packed ring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedChain {
    /// The buffer id (returned through the used descriptor).
    pub id: u16,
    /// Descriptors the chain occupied (the device's cursor advanced by
    /// this much).
    pub descriptors: u16,
    /// Driver-readable buffers.
    pub readable: SgList,
    /// Device-writable buffers.
    pub writable: SgList,
}

/// Driver side of a packed virtqueue.
#[derive(Debug, Clone)]
pub struct PackedDriver {
    layout: PackedLayout,
    next_avail: u16,
    avail_wrap: bool,
    next_used: u16,
    used_wrap: bool,
    free_ids: Vec<u16>,
    /// id → descriptor count, to advance the used cursor on reap.
    outstanding: HashMap<u16, u16>,
    num_free: u16,
}

impl PackedDriver {
    /// Initialises the ring memory (all descriptors neutral) and the
    /// driver state (wrap counters start at 1, §2.7.1).
    ///
    /// # Errors
    ///
    /// Fails if the ring memory is outside guest RAM.
    pub fn new(ram: &mut GuestRam, layout: PackedLayout) -> Result<Self, VirtioError> {
        ram.fill(layout.desc, layout.footprint(), 0)?;
        Ok(PackedDriver {
            layout,
            next_avail: 0,
            avail_wrap: true,
            next_used: 0,
            used_wrap: true,
            free_ids: (0..layout.size).rev().collect(),
            outstanding: HashMap::new(),
            num_free: layout.size,
        })
    }

    /// The layout.
    pub fn layout(&self) -> &PackedLayout {
        &self.layout
    }

    /// Free descriptor slots.
    pub fn num_free(&self) -> u16 {
        self.num_free
    }

    /// Posts a chain of readable-then-writable segments; returns the
    /// buffer id.
    ///
    /// # Errors
    ///
    /// [`VirtioError::ChainTooLong`] if the ring lacks room.
    ///
    /// # Panics
    ///
    /// Panics on an empty chain.
    pub fn add_buf(
        &mut self,
        ram: &mut GuestRam,
        readable: &[SgSegment],
        writable: &[SgSegment],
    ) -> Result<u16, VirtioError> {
        let total = readable.len() + writable.len();
        assert!(total > 0, "add_buf: empty chain");
        if total > usize::from(self.num_free) {
            return Err(VirtioError::ChainTooLong);
        }
        let id = self.free_ids.pop().expect("free id tracks num_free");
        let first_pos = self.next_avail;
        let first_wrap = self.avail_wrap;
        for (i, seg) in readable.iter().chain(writable.iter()).enumerate() {
            let pos = self.next_avail;
            let wrap = self.avail_wrap;
            let mut flags = 0u16;
            if i >= readable.len() {
                flags |= PACKED_F_WRITE;
            }
            if i + 1 < total {
                flags |= PACKED_F_NEXT;
            }
            // Availability bits: avail == wrap, used == !wrap. The first
            // descriptor is written LAST conceptually (the device must
            // not see a partial chain); in this single-threaded
            // simulation we emulate that by writing the first slot's
            // flags at the end.
            let avail_bits = Self::avail_bits(wrap);
            let slot_flags = flags | if pos == first_pos { 0 } else { avail_bits };
            write_slot(
                ram,
                self.layout.slot(pos),
                seg.addr.value(),
                seg.len,
                id,
                slot_flags,
            )?;
            self.advance_avail();
        }
        // Publish: flip the first descriptor's availability bits.
        let first_at = self.layout.slot(first_pos);
        let flags = ram.read_u16(first_at + 14)?;
        ram.write_u16(first_at + 14, flags | Self::avail_bits(first_wrap))?;
        self.num_free -= total as u16;
        self.outstanding.insert(id, total as u16);
        Ok(id)
    }

    fn avail_bits(wrap: bool) -> u16 {
        if wrap {
            PACKED_F_AVAIL // avail=1, used=0
        } else {
            PACKED_F_USED // avail=0, used=1
        }
    }

    fn advance_avail(&mut self) {
        self.next_avail += 1;
        if self.next_avail == self.layout.size {
            self.next_avail = 0;
            self.avail_wrap = !self.avail_wrap;
        }
    }

    /// Reaps one completion: `(id, bytes_written)`; `None` if nothing
    /// pending.
    ///
    /// # Errors
    ///
    /// Fails on memory faults or if the device returned an id the
    /// driver never posted.
    pub fn poll_used(&mut self, ram: &GuestRam) -> Result<Option<(u16, u32)>, VirtioError> {
        let at = self.layout.slot(self.next_used);
        let slot = read_slot(ram, at)?;
        if !is_used(slot.flags, self.used_wrap) {
            return Ok(None);
        }
        let Some(count) = self.outstanding.remove(&slot.id) else {
            return Err(VirtioError::BadHeadIndex(slot.id));
        };
        // The device consumed `count` descriptors; our used cursor skips
        // over them.
        for _ in 0..count {
            self.next_used += 1;
            if self.next_used == self.layout.size {
                self.next_used = 0;
                self.used_wrap = !self.used_wrap;
            }
        }
        self.free_ids.push(slot.id);
        self.num_free += count;
        Ok(Some((slot.id, slot.len)))
    }
}

/// Device side of a packed virtqueue.
#[derive(Debug, Clone)]
pub struct PackedDevice {
    layout: PackedLayout,
    next_avail: u16,
    avail_wrap: bool,
    next_used: u16,
    used_wrap: bool,
    popped: u64,
}

impl PackedDevice {
    /// Creates the device view (wrap counters at 1).
    pub fn new(layout: PackedLayout) -> Self {
        PackedDevice {
            layout,
            next_avail: 0,
            avail_wrap: true,
            next_used: 0,
            used_wrap: true,
            popped: 0,
        }
    }

    /// Pops the next available chain, if any.
    ///
    /// # Errors
    ///
    /// Fails on memory faults, over-long chains, or ordering violations
    /// (readable after writable).
    pub fn pop_avail(&mut self, ram: &GuestRam) -> Result<Option<PackedChain>, VirtioError> {
        let first = read_slot(ram, self.layout.slot(self.next_avail))?;
        if !is_avail(first.flags, self.avail_wrap) {
            return Ok(None);
        }
        let mut readable = SgList::new();
        let mut writable = SgList::new();
        let mut count = 0u16;
        let mut id;
        loop {
            if count >= self.layout.size {
                return Err(VirtioError::ChainTooLong);
            }
            let slot = read_slot(ram, self.layout.slot(self.next_avail))?;
            count += 1;
            id = slot.id;
            let seg = SgSegment::new(GuestAddr::new(slot.addr), slot.len);
            if slot.flags & PACKED_F_WRITE != 0 {
                writable.push(seg);
            } else {
                if !writable.is_empty() {
                    return Err(VirtioError::ReadableAfterWritable);
                }
                readable.push(seg);
            }
            let more = slot.flags & PACKED_F_NEXT != 0;
            self.next_avail += 1;
            if self.next_avail == self.layout.size {
                self.next_avail = 0;
                self.avail_wrap = !self.avail_wrap;
            }
            if !more {
                break;
            }
        }
        self.popped += 1;
        Ok(Some(PackedChain {
            id,
            descriptors: count,
            readable,
            writable,
        }))
    }

    /// Completes a chain: writes one used descriptor at the device's
    /// used cursor (id + written length) and skips the chain's slots.
    ///
    /// # Errors
    ///
    /// Fails on memory faults.
    pub fn push_used(
        &mut self,
        ram: &mut GuestRam,
        chain: &PackedChain,
        written: u32,
    ) -> Result<(), VirtioError> {
        let used_bits = if self.used_wrap {
            PACKED_F_AVAIL | PACKED_F_USED // avail == used == 1
        } else {
            0 // avail == used == 0
        };
        write_slot(
            ram,
            self.layout.slot(self.next_used),
            0,
            written,
            chain.id,
            used_bits,
        )?;
        for _ in 0..chain.descriptors {
            self.next_used += 1;
            if self.next_used == self.layout.size {
                self.next_used = 0;
                self.used_wrap = !self.used_wrap;
            }
        }
        Ok(())
    }

    /// Chains popped so far.
    pub fn popped_count(&self) -> u64 {
        self.popped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(size: u16) -> (GuestRam, PackedDriver, PackedDevice) {
        let mut ram = GuestRam::new(1 << 20);
        let layout = PackedLayout::new(GuestAddr::new(0x1000), size);
        let driver = PackedDriver::new(&mut ram, layout).unwrap();
        let device = PackedDevice::new(layout);
        (ram, driver, device)
    }

    #[test]
    fn single_buffer_round_trip() {
        let (mut ram, mut driver, mut device) = setup(8);
        ram.write(GuestAddr::new(0x5000), b"packed").unwrap();
        let id = driver
            .add_buf(&mut ram, &[SgSegment::new(GuestAddr::new(0x5000), 6)], &[])
            .unwrap();
        let chain = device.pop_avail(&ram).unwrap().unwrap();
        assert_eq!(chain.id, id);
        assert_eq!(chain.readable.gather(&ram).unwrap(), b"packed");
        device.push_used(&mut ram, &chain, 0).unwrap();
        assert_eq!(driver.poll_used(&ram).unwrap(), Some((id, 0)));
        assert_eq!(driver.num_free(), 8);
    }

    #[test]
    fn empty_ring_pops_none() {
        let (ram, mut driver, mut device) = setup(4);
        assert_eq!(device.pop_avail(&ram).unwrap(), None);
        let ram2 = ram;
        assert_eq!(driver.poll_used(&ram2).unwrap(), None);
    }

    #[test]
    fn chains_with_response_data() {
        let (mut ram, mut driver, mut device) = setup(8);
        ram.write(GuestAddr::new(0x5000), b"req").unwrap();
        let id = driver
            .add_buf(
                &mut ram,
                &[SgSegment::new(GuestAddr::new(0x5000), 3)],
                &[SgSegment::new(GuestAddr::new(0x6000), 16)],
            )
            .unwrap();
        let chain = device.pop_avail(&ram).unwrap().unwrap();
        assert_eq!(chain.descriptors, 2);
        assert_eq!(chain.readable.gather(&ram).unwrap(), b"req");
        chain.writable.scatter(&mut ram, b"response!").unwrap();
        device.push_used(&mut ram, &chain, 9).unwrap();
        assert_eq!(driver.poll_used(&ram).unwrap(), Some((id, 9)));
        assert_eq!(
            ram.read_vec(GuestAddr::new(0x6000), 9).unwrap(),
            b"response!"
        );
    }

    #[test]
    fn ring_wraps_with_wrap_counters() {
        // A 3-slot ring cycled 10 times exercises both wrap flips.
        let (mut ram, mut driver, mut device) = setup(3);
        for round in 0..10u32 {
            let id = driver
                .add_buf(&mut ram, &[SgSegment::new(GuestAddr::new(0x5000), 4)], &[])
                .unwrap();
            let chain = device.pop_avail(&ram).unwrap().unwrap();
            assert_eq!(chain.id, id);
            device.push_used(&mut ram, &chain, round).unwrap();
            assert_eq!(driver.poll_used(&ram).unwrap(), Some((id, round)));
        }
        assert_eq!(device.popped_count(), 10);
    }

    #[test]
    fn chain_straddling_the_ring_end() {
        let (mut ram, mut driver, mut device) = setup(4);
        // Consume 3 slots so the next 2-descriptor chain wraps.
        driver
            .add_buf(
                &mut ram,
                &[
                    SgSegment::new(GuestAddr::new(0x5000), 1),
                    SgSegment::new(GuestAddr::new(0x5100), 1),
                    SgSegment::new(GuestAddr::new(0x5200), 1),
                ],
                &[],
            )
            .unwrap();
        let c1 = device.pop_avail(&ram).unwrap().unwrap();
        device.push_used(&mut ram, &c1, 0).unwrap();
        driver.poll_used(&ram).unwrap().unwrap();
        // This chain occupies slots 3 and 0 (wrapping).
        ram.write(GuestAddr::new(0x7000), b"wrap-me!").unwrap();
        let id = driver
            .add_buf(
                &mut ram,
                &[
                    SgSegment::new(GuestAddr::new(0x7000), 4),
                    SgSegment::new(GuestAddr::new(0x7004), 4),
                ],
                &[],
            )
            .unwrap();
        let chain = device.pop_avail(&ram).unwrap().unwrap();
        assert_eq!(chain.readable.gather(&ram).unwrap(), b"wrap-me!");
        device.push_used(&mut ram, &chain, 0).unwrap();
        assert_eq!(driver.poll_used(&ram).unwrap(), Some((id, 0)));
    }

    #[test]
    fn out_of_order_completion_by_id() {
        let (mut ram, mut driver, mut device) = setup(8);
        let id1 = driver
            .add_buf(&mut ram, &[SgSegment::new(GuestAddr::new(0x5000), 4)], &[])
            .unwrap();
        let id2 = driver
            .add_buf(&mut ram, &[SgSegment::new(GuestAddr::new(0x5100), 4)], &[])
            .unwrap();
        let c1 = device.pop_avail(&ram).unwrap().unwrap();
        let c2 = device.pop_avail(&ram).unwrap().unwrap();
        // Device completes the SECOND chain first.
        device.push_used(&mut ram, &c2, 22).unwrap();
        device.push_used(&mut ram, &c1, 11).unwrap();
        assert_eq!(driver.poll_used(&ram).unwrap(), Some((id2, 22)));
        assert_eq!(driver.poll_used(&ram).unwrap(), Some((id1, 11)));
        assert_eq!(driver.num_free(), 8);
    }

    #[test]
    fn full_ring_rejects_further_posts() {
        let (mut ram, mut driver, _) = setup(2);
        driver
            .add_buf(&mut ram, &[SgSegment::new(GuestAddr::new(0x5000), 4)], &[])
            .unwrap();
        driver
            .add_buf(&mut ram, &[SgSegment::new(GuestAddr::new(0x5100), 4)], &[])
            .unwrap();
        assert_eq!(
            driver.add_buf(&mut ram, &[SgSegment::new(GuestAddr::new(0x5200), 4)], &[]),
            Err(VirtioError::ChainTooLong)
        );
    }

    #[test]
    fn forged_used_id_is_detected() {
        let (mut ram, mut driver, _) = setup(4);
        driver
            .add_buf(&mut ram, &[SgSegment::new(GuestAddr::new(0x5000), 4)], &[])
            .unwrap();
        // Forge a used descriptor at slot 0 with a bogus id.
        let layout = *driver.layout();
        write_slot(
            &mut ram,
            layout.slot(0),
            0,
            0,
            99,
            PACKED_F_AVAIL | PACKED_F_USED,
        )
        .unwrap();
        assert_eq!(driver.poll_used(&ram), Err(VirtioError::BadHeadIndex(99)));
    }

    #[test]
    fn non_power_of_two_sizes_work() {
        // Packed rings allow any size; 5 cycles the wrap quickly.
        let (mut ram, mut driver, mut device) = setup(5);
        for round in 0..23u32 {
            let id = driver
                .add_buf(&mut ram, &[SgSegment::new(GuestAddr::new(0x5000), 2)], &[])
                .unwrap();
            let chain = device.pop_avail(&ram).unwrap().unwrap();
            device.push_used(&mut ram, &chain, round).unwrap();
            assert_eq!(driver.poll_used(&ram).unwrap(), Some((id, round)));
        }
    }

    #[test]
    #[should_panic(expected = "size out of range")]
    fn zero_size_rejected() {
        PackedLayout::new(GuestAddr::new(0x1000), 0);
    }
}
