//! virtio-net wire format.
//!
//! Every packet on a virtio-net queue is prefixed by a 12-byte header
//! (virtio 1.1 §5.1.6). BM-Hive's fast path negotiates no offloads — the
//! DPDK vSwitch handles checksums downstream — so the header is usually
//! all zeroes with `num_buffers = 1`, but the format is implemented in
//! full so the same frames parse on the vm-guest path.

use bmhive_mem::{GuestAddr, GuestRam, MemError};

/// Length of the virtio-net header with the mergeable-buffers field.
pub const VIRTIO_NET_HDR_LEN: u64 = 12;

/// The per-packet virtio-net header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct VirtioNetHeader {
    /// Offload flags (VIRTIO_NET_HDR_F_*).
    pub flags: u8,
    /// GSO type (VIRTIO_NET_HDR_GSO_*).
    pub gso_type: u8,
    /// Header length for GSO.
    pub hdr_len: u16,
    /// GSO segment size.
    pub gso_size: u16,
    /// Checksum start offset.
    pub csum_start: u16,
    /// Checksum offset from start.
    pub csum_offset: u16,
    /// Number of merged rx buffers (1 when not merging).
    pub num_buffers: u16,
}

impl VirtioNetHeader {
    /// A header for a simple, non-offloaded packet.
    pub fn simple() -> Self {
        VirtioNetHeader {
            num_buffers: 1,
            ..Default::default()
        }
    }

    /// Serialises to the 12-byte wire format.
    pub fn to_bytes(&self) -> [u8; VIRTIO_NET_HDR_LEN as usize] {
        let mut out = [0u8; VIRTIO_NET_HDR_LEN as usize];
        out[0] = self.flags;
        out[1] = self.gso_type;
        out[2..4].copy_from_slice(&self.hdr_len.to_le_bytes());
        out[4..6].copy_from_slice(&self.gso_size.to_le_bytes());
        out[6..8].copy_from_slice(&self.csum_start.to_le_bytes());
        out[8..10].copy_from_slice(&self.csum_offset.to_le_bytes());
        out[10..12].copy_from_slice(&self.num_buffers.to_le_bytes());
        out
    }

    /// Parses from the wire format.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is shorter than [`VIRTIO_NET_HDR_LEN`].
    pub fn from_bytes(bytes: &[u8]) -> Self {
        assert!(
            bytes.len() >= VIRTIO_NET_HDR_LEN as usize,
            "virtio-net header too short"
        );
        VirtioNetHeader {
            flags: bytes[0],
            gso_type: bytes[1],
            hdr_len: u16::from_le_bytes([bytes[2], bytes[3]]),
            gso_size: u16::from_le_bytes([bytes[4], bytes[5]]),
            csum_start: u16::from_le_bytes([bytes[6], bytes[7]]),
            csum_offset: u16::from_le_bytes([bytes[8], bytes[9]]),
            num_buffers: u16::from_le_bytes([bytes[10], bytes[11]]),
        }
    }
}

/// virtio-net device configuration space (the region behind the
/// DEVICE_CFG capability).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetConfig {
    /// MAC address.
    pub mac: [u8; 6],
    /// Link status (bit 0: link up).
    pub status: u16,
    /// Maximum rx/tx queue pairs.
    pub max_virtqueue_pairs: u16,
    /// MTU advertised to the guest.
    pub mtu: u16,
}

impl NetConfig {
    /// A config with the given MAC, link up, one queue pair, 1500 MTU.
    pub fn with_mac(mac: [u8; 6]) -> Self {
        NetConfig {
            mac,
            status: 1,
            max_virtqueue_pairs: 1,
            mtu: 1500,
        }
    }

    /// Serialises to the device-config wire layout.
    pub fn to_bytes(&self) -> [u8; 12] {
        let mut out = [0u8; 12];
        out[0..6].copy_from_slice(&self.mac);
        out[6..8].copy_from_slice(&self.status.to_le_bytes());
        out[8..10].copy_from_slice(&self.max_virtqueue_pairs.to_le_bytes());
        out[10..12].copy_from_slice(&self.mtu.to_le_bytes());
        out
    }
}

/// Writes a header + payload as one contiguous packet buffer into guest
/// RAM at `addr`, returning the total length.
///
/// # Errors
///
/// Fails if the buffer exceeds guest RAM.
pub fn write_packet(
    ram: &mut GuestRam,
    addr: GuestAddr,
    header: &VirtioNetHeader,
    payload: &[u8],
) -> Result<u32, MemError> {
    ram.write(addr, &header.to_bytes())?;
    ram.write(addr + VIRTIO_NET_HDR_LEN, payload)?;
    Ok((VIRTIO_NET_HDR_LEN as usize + payload.len()) as u32)
}

/// Reads a packet buffer (header + payload) of `total_len` bytes from
/// guest RAM at `addr`.
///
/// # Errors
///
/// Fails if the buffer exceeds guest RAM.
///
/// # Panics
///
/// Panics if `total_len` is shorter than the header.
pub fn read_packet(
    ram: &GuestRam,
    addr: GuestAddr,
    total_len: u32,
) -> Result<(VirtioNetHeader, Vec<u8>), MemError> {
    assert!(
        u64::from(total_len) >= VIRTIO_NET_HDR_LEN,
        "packet shorter than virtio-net header"
    );
    let bytes = ram.read_vec(addr, u64::from(total_len))?;
    let header = VirtioNetHeader::from_bytes(&bytes);
    Ok((header, bytes[VIRTIO_NET_HDR_LEN as usize..].to_vec()))
}

/// A completed mergeable-rx delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MergedDelivery {
    /// Rx buffers consumed (the header's `num_buffers`).
    pub buffers_used: u16,
    /// Total bytes written across them (header + payload).
    pub total_written: u64,
}

/// Delivers one packet using mergeable rx buffers
/// (`VIRTIO_NET_F_MRG_RXBUF`, virtio 1.1 §5.1.6.3.1): a payload larger
/// than one posted buffer spans several, with the first buffer's header
/// carrying `num_buffers`. This is how a 64 KiB GRO super-frame lands in
/// 2 KiB rx buffers.
///
/// Pops as many rx chains as the payload needs. If the ring runs out of
/// buffers mid-packet, the packet is dropped: the already-popped buffers
/// are completed with length 0 (the driver just recycles them) and
/// `Ok(None)` is returned — exactly what a NIC does on rx-ring
/// underrun.
///
/// # Errors
///
/// Propagates ring-format and memory errors.
pub fn deliver_merged(
    ram: &mut GuestRam,
    vq: &mut crate::queue::Virtqueue,
    payload: &[u8],
) -> Result<Option<MergedDelivery>, crate::queue::VirtioError> {
    let total_needed = VIRTIO_NET_HDR_LEN + payload.len() as u64;
    // Collect buffers until we have capacity.
    let mut chains = Vec::new();
    let mut capacity = 0u64;
    while capacity < total_needed {
        match vq.pop_avail(ram)? {
            Some(chain) => {
                capacity += chain.writable.total_len();
                chains.push(chain);
            }
            None => {
                // Underrun: recycle what we took, drop the packet.
                for chain in chains {
                    vq.push_used(ram, chain.head, 0)?;
                }
                return Ok(None);
            }
        }
    }
    // First buffer: header with num_buffers, then payload bytes.
    let mut hdr = VirtioNetHeader::simple();
    hdr.num_buffers = chains.len() as u16;
    let mut bytes = hdr.to_bytes().to_vec();
    bytes.extend_from_slice(payload);
    let mut offset = 0usize;
    let mut total_written = 0u64;
    for chain in &chains {
        let take = (bytes.len() - offset).min(chain.writable.total_len() as usize);
        let written = chain.writable.scatter(ram, &bytes[offset..offset + take])?;
        vq.push_used(ram, chain.head, written as u32)?;
        offset += take;
        total_written += written;
    }
    Ok(Some(MergedDelivery {
        buffers_used: chains.len() as u16,
        total_written,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_round_trips() {
        let hdr = VirtioNetHeader {
            flags: 1,
            gso_type: 3,
            hdr_len: 54,
            gso_size: 1448,
            csum_start: 34,
            csum_offset: 16,
            num_buffers: 2,
        };
        assert_eq!(VirtioNetHeader::from_bytes(&hdr.to_bytes()), hdr);
    }

    #[test]
    fn simple_header_is_mostly_zero() {
        let hdr = VirtioNetHeader::simple();
        let bytes = hdr.to_bytes();
        assert_eq!(&bytes[..10], &[0u8; 10]);
        assert_eq!(hdr.num_buffers, 1);
    }

    #[test]
    fn config_layout() {
        let cfg = NetConfig::with_mac([0x52, 0x54, 0, 0, 0, 1]);
        let bytes = cfg.to_bytes();
        assert_eq!(&bytes[0..6], &[0x52, 0x54, 0, 0, 0, 1]);
        assert_eq!(u16::from_le_bytes([bytes[6], bytes[7]]), 1); // link up
        assert_eq!(u16::from_le_bytes([bytes[10], bytes[11]]), 1500);
    }

    #[test]
    fn packet_round_trip_through_ram() {
        let mut ram = GuestRam::new(1 << 16);
        let hdr = VirtioNetHeader::simple();
        let len = write_packet(&mut ram, GuestAddr::new(0x100), &hdr, b"udp payload").unwrap();
        assert_eq!(len, 12 + 11);
        let (parsed, payload) = read_packet(&ram, GuestAddr::new(0x100), len).unwrap();
        assert_eq!(parsed, hdr);
        assert_eq!(payload, b"udp payload");
    }

    #[test]
    #[should_panic(expected = "shorter than virtio-net header")]
    fn short_packet_panics() {
        let ram = GuestRam::new(1 << 16);
        let _ = read_packet(&ram, GuestAddr::new(0), 4);
    }
}

#[cfg(test)]
mod merge_tests {
    use super::*;
    use crate::driver::VirtqueueDriver;
    use crate::queue::{QueueLayout, Virtqueue};
    use bmhive_mem::SgSegment;

    fn rx_ring(buffers: u16, buf_size: u32) -> (GuestRam, VirtqueueDriver, Virtqueue, Vec<u16>) {
        let mut ram = GuestRam::new(1 << 20);
        let layout = QueueLayout::contiguous(GuestAddr::new(0x1000), 16);
        let mut driver = VirtqueueDriver::new(&mut ram, layout).unwrap();
        let device = Virtqueue::new(layout);
        let mut heads = Vec::new();
        for i in 0..buffers {
            let addr = GuestAddr::new(0x10_000 + u64::from(i) * 0x1_000);
            heads.push(
                driver
                    .add_buf(&mut ram, &[], &[SgSegment::new(addr, buf_size)])
                    .unwrap(),
            );
        }
        (ram, driver, device, heads)
    }

    #[test]
    fn small_packet_uses_one_buffer() {
        let (mut ram, mut driver, mut device, _) = rx_ring(4, 2048);
        let d = deliver_merged(&mut ram, &mut device, b"small")
            .unwrap()
            .unwrap();
        assert_eq!(d.buffers_used, 1);
        assert_eq!(d.total_written, 12 + 5);
        let (head, len) = driver.poll_used(&ram).unwrap().unwrap();
        let addr = GuestAddr::new(0x10_000);
        let (hdr, payload) = read_packet(&ram, addr, len).unwrap();
        assert_eq!(hdr.num_buffers, 1);
        assert_eq!(payload, b"small");
        let _ = head;
    }

    #[test]
    fn large_packet_spans_buffers_with_num_buffers_set() {
        // 5000-byte payload into 2048-byte buffers: header+payload =
        // 5012 bytes → 3 buffers.
        let (mut ram, mut driver, mut device, _) = rx_ring(4, 2048);
        let payload: Vec<u8> = (0..5000u32).map(|i| (i % 251) as u8).collect();
        let d = deliver_merged(&mut ram, &mut device, &payload)
            .unwrap()
            .unwrap();
        assert_eq!(d.buffers_used, 3);
        assert_eq!(d.total_written, 12 + 5000);
        // Reassemble from the three completions, in order.
        let mut assembled = Vec::new();
        let mut first = true;
        let mut num_buffers = 0;
        while let Some((head, len)) = driver.poll_used(&ram).unwrap() {
            // Heads were posted in address order starting at 0x10_000.
            let addr = GuestAddr::new(0x10_000 + u64::from(head) * 0x1_000);
            let bytes = ram.read_vec(addr, u64::from(len)).unwrap();
            if first {
                let hdr = VirtioNetHeader::from_bytes(&bytes);
                num_buffers = hdr.num_buffers;
                assembled.extend_from_slice(&bytes[VIRTIO_NET_HDR_LEN as usize..]);
                first = false;
            } else {
                assembled.extend_from_slice(&bytes);
            }
        }
        assert_eq!(num_buffers, 3);
        assert_eq!(assembled, payload);
    }

    #[test]
    fn ring_underrun_drops_and_recycles() {
        // Only 2 × 2048 B posted; a 6000-byte payload cannot fit.
        let (mut ram, mut driver, mut device, _) = rx_ring(2, 2048);
        let payload = vec![7u8; 6000];
        assert_eq!(
            deliver_merged(&mut ram, &mut device, &payload).unwrap(),
            None
        );
        // Both buffers came back with zero length — recycled, not lost.
        let mut recycled = 0;
        while let Some((_, len)) = driver.poll_used(&ram).unwrap() {
            assert_eq!(len, 0);
            recycled += 1;
        }
        assert_eq!(recycled, 2);
        // After reposting, a fitting packet flows.
        let mut heads = Vec::new();
        for i in 0..2u64 {
            let addr = GuestAddr::new(0x20_000 + i * 0x1_000);
            heads.push(
                driver
                    .add_buf(&mut ram, &[], &[SgSegment::new(addr, 2048)])
                    .unwrap(),
            );
        }
        assert!(deliver_merged(&mut ram, &mut device, &[1u8; 3000])
            .unwrap()
            .is_some());
    }
}
