//! Device types, feature negotiation, and the status state machine.
//!
//! Virtio initialisation is a handshake: the driver acknowledges the
//! device, negotiates features, configures queues, then sets DRIVER_OK
//! (virtio 1.1 §3.1). [`DeviceState`] tracks that handshake for one
//! device; the virtio-pci transport ([`crate::pci`]) exposes it through
//! registers, and IO-Bond forwards those register accesses between the
//! compute board and the bm-hypervisor.

use crate::queue::QueueLayout;
use bmhive_mem::GuestAddr;

/// Device status register bits (virtio 1.1 §2.1).
pub mod status {
    /// The guest found the device.
    pub const ACKNOWLEDGE: u8 = 1;
    /// The guest knows how to drive it.
    pub const DRIVER: u8 = 2;
    /// The driver is set up and ready.
    pub const DRIVER_OK: u8 = 4;
    /// Feature negotiation is complete.
    pub const FEATURES_OK: u8 = 8;
    /// The device has experienced an unrecoverable error.
    pub const DEVICE_NEEDS_RESET: u8 = 64;
    /// The guest has given up on the device.
    pub const FAILED: u8 = 128;
}

/// Virtio device types (virtio 1.1 §5). Only the types BM-Hive's IO-Bond
/// currently emulates are listed; the paper notes other types "can be
/// easily extended ... with only minor changes" (§3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceType {
    /// virtio-net (device id 1).
    Net,
    /// virtio-blk (device id 2).
    Block,
    /// virtio-gpu used for the VGA console of §3.4.2 (device id 16).
    Gpu,
}

impl DeviceType {
    /// The virtio device id.
    pub fn device_id(self) -> u16 {
        match self {
            DeviceType::Net => 1,
            DeviceType::Block => 2,
            DeviceType::Gpu => 16,
        }
    }

    /// The PCI device id on the modern transport (`0x1040 + id`).
    pub fn pci_device_id(self) -> u16 {
        0x1040 + self.device_id()
    }

    /// Number of virtqueues the BM-Hive implementation configures:
    /// net has an rx/tx pair, blk and gpu have one request queue.
    pub fn queue_count(self) -> u16 {
        match self {
            DeviceType::Net => 2,
            DeviceType::Block | DeviceType::Gpu => 1,
        }
    }
}

/// Feature bits offered by BM-Hive's devices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u64)]
pub enum Feature {
    /// Indirect descriptor support (bit 28).
    RingIndirectDesc = 1 << 28,
    /// `used_event` / `avail_event` notification thresholds (bit 29).
    RingEventIdx = 1 << 29,
    /// The device is virtio 1.x, not legacy (bit 32).
    Version1 = 1 << 32,
    /// virtio-net: device reports a MAC address (bit 5).
    NetMac = 1 << 5,
    /// virtio-net: device reports link status (bit 16).
    NetStatus = 1 << 16,
    /// virtio-blk: device reports flush support (bit 9).
    BlkFlush = 1 << 9,
}

/// Per-queue configuration written by the driver through the transport.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueueConfig {
    /// Queue size selected by the driver (0 = untouched).
    pub size: u16,
    /// Descriptor table address.
    pub desc: GuestAddr,
    /// Avail (driver area) address.
    pub avail: GuestAddr,
    /// Used (device area) address.
    pub used: GuestAddr,
    /// Whether the driver enabled the queue.
    pub enabled: bool,
    /// MSI-X vector for this queue.
    pub msix_vector: u16,
}

impl QueueConfig {
    /// The configured layout, if the queue is enabled with a valid size.
    pub fn layout(&self) -> Option<QueueLayout> {
        if self.enabled && self.size > 0 && self.size.is_power_of_two() {
            Some(QueueLayout {
                size: self.size,
                desc: self.desc,
                avail: self.avail,
                used: self.used,
            })
        } else {
            None
        }
    }
}

/// The negotiation and configuration state of one virtio device.
#[derive(Debug, Clone)]
pub struct DeviceState {
    device_type: DeviceType,
    device_features: u64,
    driver_features: u64,
    status: u8,
    queues: Vec<QueueConfig>,
    max_queue_size: u16,
    config_generation: u8,
}

impl DeviceState {
    /// Creates a device offering `device_features`, with
    /// [`DeviceType::queue_count`] queues of at most `max_queue_size`
    /// descriptors.
    ///
    /// # Panics
    ///
    /// Panics if `max_queue_size` is not a power of two.
    pub fn new(device_type: DeviceType, device_features: u64, max_queue_size: u16) -> Self {
        Self::with_queue_count(
            device_type,
            device_features,
            max_queue_size,
            device_type.queue_count(),
        )
    }

    /// Like [`new`](Self::new) but with an explicit queue count — the
    /// multiqueue configurations behind the 4 M PPS instances
    /// (virtio-net exposes `max_virtqueue_pairs` rx/tx pairs; each pair
    /// is two queues here).
    ///
    /// # Panics
    ///
    /// Panics if `max_queue_size` is not a power of two or `queue_count`
    /// is zero.
    pub fn with_queue_count(
        device_type: DeviceType,
        device_features: u64,
        max_queue_size: u16,
        queue_count: u16,
    ) -> Self {
        assert!(
            max_queue_size.is_power_of_two(),
            "max_queue_size must be a power of two"
        );
        assert!(queue_count > 0, "need at least one queue");
        let queues = vec![
            QueueConfig {
                size: max_queue_size,
                ..QueueConfig::default()
            };
            usize::from(queue_count)
        ];
        DeviceState {
            device_type,
            device_features: device_features | Feature::Version1 as u64,
            driver_features: 0,
            status: 0,
            queues,
            max_queue_size,
            config_generation: 0,
        }
    }

    /// The device type.
    pub fn device_type(&self) -> DeviceType {
        self.device_type
    }

    /// Features the device offers.
    pub fn device_features(&self) -> u64 {
        self.device_features
    }

    /// Features the driver has written so far.
    pub fn driver_features(&self) -> u64 {
        self.driver_features
    }

    /// The negotiated feature set (device ∩ driver).
    pub fn negotiated_features(&self) -> u64 {
        self.device_features & self.driver_features
    }

    /// Whether a feature was offered and accepted.
    pub fn has_feature(&self, feature: Feature) -> bool {
        self.negotiated_features() & feature as u64 != 0
    }

    /// Records the driver's accepted features. Bits the device did not
    /// offer are ignored (masked), as transports do.
    pub fn set_driver_features(&mut self, features: u64) {
        self.driver_features = features & self.device_features;
    }

    /// The device status byte.
    pub fn device_status(&self) -> u8 {
        self.status
    }

    /// Driver writes to the status register. Writing 0 resets the device
    /// (clearing negotiation and queue state).
    pub fn set_device_status(&mut self, value: u8) {
        if value == 0 {
            self.reset();
        } else {
            self.status = value;
        }
    }

    /// Resets the device to power-on state, bumping the config
    /// generation.
    pub fn reset(&mut self) {
        self.status = 0;
        self.driver_features = 0;
        for q in &mut self.queues {
            *q = QueueConfig {
                size: self.max_queue_size,
                ..QueueConfig::default()
            };
        }
        self.config_generation = self.config_generation.wrapping_add(1);
    }

    /// Whether the handshake reached DRIVER_OK (the device is live).
    pub fn is_live(&self) -> bool {
        self.status & status::DRIVER_OK != 0 && self.status & status::FAILED == 0
    }

    /// Marks the device as needing reset (backend failure injection).
    pub fn mark_needs_reset(&mut self) {
        self.status |= status::DEVICE_NEEDS_RESET;
    }

    /// Number of queues.
    pub fn queue_count(&self) -> u16 {
        self.queues.len() as u16
    }

    /// Maximum queue size the device supports.
    pub fn max_queue_size(&self) -> u16 {
        self.max_queue_size
    }

    /// Borrows queue `index`'s configuration.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn queue(&self, index: u16) -> &QueueConfig {
        &self.queues[usize::from(index)]
    }

    /// Mutably borrows queue `index`'s configuration.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn queue_mut(&mut self, index: u16) -> &mut QueueConfig {
        &mut self.queues[usize::from(index)]
    }

    /// The config-space generation counter (bumped on reset/config
    /// change).
    pub fn config_generation(&self) -> u8 {
        self.config_generation
    }

    /// Performs the complete driver-side handshake in one call: status
    /// dance, feature negotiation (accepting everything offered), queue
    /// layout programming, DRIVER_OK. Returns the negotiated features.
    ///
    /// This is the shortcut the simulated guest kernels use once the
    /// transport-level handshake has been exercised elsewhere.
    pub fn driver_handshake(&mut self, layouts: &[QueueLayout]) -> u64 {
        self.set_device_status(status::ACKNOWLEDGE);
        self.set_device_status(status::ACKNOWLEDGE | status::DRIVER);
        let offered = self.device_features();
        self.set_driver_features(offered);
        self.set_device_status(status::ACKNOWLEDGE | status::DRIVER | status::FEATURES_OK);
        for (i, layout) in layouts.iter().enumerate() {
            let q = self.queue_mut(i as u16);
            q.size = layout.size;
            q.desc = layout.desc;
            q.avail = layout.avail;
            q.used = layout.used;
            q.enabled = true;
        }
        self.set_device_status(
            status::ACKNOWLEDGE | status::DRIVER | status::FEATURES_OK | status::DRIVER_OK,
        );
        self.negotiated_features()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_ids_match_spec() {
        assert_eq!(DeviceType::Net.device_id(), 1);
        assert_eq!(DeviceType::Block.device_id(), 2);
        assert_eq!(DeviceType::Net.pci_device_id(), 0x1041);
        assert_eq!(DeviceType::Block.pci_device_id(), 0x1042);
        assert_eq!(DeviceType::Net.queue_count(), 2);
        assert_eq!(DeviceType::Block.queue_count(), 1);
    }

    #[test]
    fn version1_is_always_offered() {
        let dev = DeviceState::new(DeviceType::Net, 0, 256);
        assert!(dev.device_features() & Feature::Version1 as u64 != 0);
    }

    #[test]
    fn negotiation_masks_unoffered_bits() {
        let mut dev = DeviceState::new(
            DeviceType::Net,
            Feature::NetMac as u64 | Feature::RingIndirectDesc as u64,
            256,
        );
        dev.set_driver_features(u64::MAX);
        assert!(dev.has_feature(Feature::NetMac));
        assert!(dev.has_feature(Feature::RingIndirectDesc));
        // BlkFlush was never offered; accepting everything does not grant it.
        assert!(!dev.has_feature(Feature::BlkFlush));
    }

    #[test]
    fn handshake_reaches_driver_ok() {
        let mut dev = DeviceState::new(DeviceType::Block, Feature::BlkFlush as u64, 128);
        assert!(!dev.is_live());
        let layout = QueueLayout::contiguous(GuestAddr::new(0x1000), 128);
        let negotiated = dev.driver_handshake(&[layout]);
        assert!(dev.is_live());
        assert!(negotiated & Feature::BlkFlush as u64 != 0);
        assert_eq!(dev.queue(0).layout().unwrap(), layout);
    }

    #[test]
    fn reset_clears_everything_and_bumps_generation() {
        let mut dev = DeviceState::new(DeviceType::Net, Feature::NetMac as u64, 256);
        let layout = QueueLayout::contiguous(GuestAddr::new(0x1000), 256);
        dev.driver_handshake(&[layout, layout]);
        let gen_before = dev.config_generation();
        dev.set_device_status(0);
        assert!(!dev.is_live());
        assert_eq!(dev.driver_features(), 0);
        assert_eq!(dev.queue(0).layout(), None);
        assert_eq!(dev.queue(0).size, 256);
        assert_ne!(dev.config_generation(), gen_before);
    }

    #[test]
    fn failed_status_means_not_live() {
        let mut dev = DeviceState::new(DeviceType::Net, 0, 16);
        dev.set_device_status(status::DRIVER_OK | status::FAILED);
        assert!(!dev.is_live());
    }

    #[test]
    fn needs_reset_flag_sets() {
        let mut dev = DeviceState::new(DeviceType::Block, 0, 16);
        dev.mark_needs_reset();
        assert!(dev.device_status() & status::DEVICE_NEEDS_RESET != 0);
    }

    #[test]
    fn disabled_or_bad_queue_has_no_layout() {
        let q = QueueConfig {
            size: 12, // not a power of two
            enabled: true,
            ..QueueConfig::default()
        };
        assert_eq!(q.layout(), None);
        let q = QueueConfig {
            size: 16,
            enabled: false,
            ..QueueConfig::default()
        };
        assert_eq!(q.layout(), None);
    }
}
