//! The split virtqueue, device side.
//!
//! Layout (virtio 1.1 §2.6): a descriptor table of 16-byte entries, an
//! avail (driver) ring, and a used (device) ring. The driver publishes
//! descriptor chain heads in the avail ring; the device walks the chains,
//! performs I/O, and returns heads through the used ring.
//!
//! In BM-Hive this structure exists twice per queue: once in compute
//! board RAM (driven by the bm-guest) and once in base RAM (the *shadow
//! vring*, driven by the bm-hypervisor). IO-Bond keeps the two in sync
//! (§3.4.1, Fig. 4) — see the `bmhive-iobond` crate.

use bmhive_mem::{GuestAddr, GuestRam, MemError, SgList, SgSegment};
use bmhive_telemetry as telemetry;
use std::error::Error;
use std::fmt;

/// Descriptor flag: the chain continues at `next`.
pub const DESC_F_NEXT: u16 = 1;
/// Descriptor flag: the buffer is device-writable.
pub const DESC_F_WRITE: u16 = 2;
/// Descriptor flag: the descriptor points to an indirect table.
pub const DESC_F_INDIRECT: u16 = 4;

/// Used-ring flag: the device asks the driver not to kick.
pub const USED_F_NO_NOTIFY: u16 = 1;
/// Avail-ring flag: the driver asks the device not to interrupt.
pub const AVAIL_F_NO_INTERRUPT: u16 = 1;

const DESC_ENTRY: u64 = 16;

/// The `vring_need_event` predicate of virtio 1.1 §2.6.7.2: whether
/// moving an index from `old` to `new` crosses the other side's event
/// threshold `event` (all in wrapping u16 arithmetic).
///
/// # Example
///
/// ```
/// use bmhive_virtio::queue::need_event;
///
/// // The driver asked to be told when used idx passes 5.
/// assert!(need_event(5, 6, 5));   // 5 -> 6 crosses
/// assert!(!need_event(5, 5, 4));  // 4 -> 5 does not (event is "passed 5")
/// assert!(need_event(0xffff, 0, 0xffff)); // wrap-around crossing
/// ```
pub fn need_event(event: u16, new: u16, old: u16) -> bool {
    new.wrapping_sub(event).wrapping_sub(1) < new.wrapping_sub(old)
}

/// Errors arising while the device parses driver-provided rings.
///
/// A malicious or buggy guest controls every byte of the descriptor
/// table, so all of these are reachable from guest input and must be
/// handled without panicking — this is the isolation boundary of §3.1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VirtioError {
    /// The ring or a buffer referenced memory outside guest RAM.
    Mem(MemError),
    /// A descriptor chain was longer than the queue size (a loop, per the
    /// spec's defensive guidance).
    ChainTooLong,
    /// A `next` index referenced a descriptor beyond the table.
    BadNextIndex(u16),
    /// An avail entry named a head index beyond the table.
    BadHeadIndex(u16),
    /// A readable descriptor followed a writable one (spec violation).
    ReadableAfterWritable,
    /// An indirect descriptor had disallowed flags or a malformed table.
    BadIndirect(&'static str),
}

impl fmt::Display for VirtioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VirtioError::Mem(e) => write!(f, "guest memory fault: {e}"),
            VirtioError::ChainTooLong => write!(f, "descriptor chain exceeds queue size"),
            VirtioError::BadNextIndex(i) => write!(f, "descriptor next index {i} out of range"),
            VirtioError::BadHeadIndex(i) => write!(f, "avail head index {i} out of range"),
            VirtioError::ReadableAfterWritable => {
                write!(f, "readable descriptor after writable descriptor")
            }
            VirtioError::BadIndirect(why) => write!(f, "bad indirect descriptor: {why}"),
        }
    }
}

impl Error for VirtioError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            VirtioError::Mem(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MemError> for VirtioError {
    fn from(e: MemError) -> Self {
        VirtioError::Mem(e)
    }
}

/// Where the three parts of a split virtqueue live in guest memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueLayout {
    /// Number of descriptors; a power of two up to 32768.
    pub size: u16,
    /// Descriptor table base.
    pub desc: GuestAddr,
    /// Avail (driver) ring base.
    pub avail: GuestAddr,
    /// Used (device) ring base.
    pub used: GuestAddr,
}

impl QueueLayout {
    /// Lays the three rings out contiguously from `base` with the
    /// alignments the spec requires (descriptor table 16, avail 2,
    /// used 4).
    ///
    /// # Panics
    ///
    /// Panics if `size` is not a power of two in `1..=32768` or `base`
    /// is not 16-byte aligned.
    pub fn contiguous(base: GuestAddr, size: u16) -> Self {
        assert!(
            size.is_power_of_two() && size <= 32768,
            "queue size must be a power of two <= 32768"
        );
        assert!(base.is_aligned(16), "queue base must be 16-byte aligned");
        let desc = base;
        let avail = desc + u64::from(size) * DESC_ENTRY;
        // Avail ring: flags + idx + ring[size] + used_event.
        let avail_bytes = 2 + 2 + 2 * u64::from(size) + 2;
        let used = (avail + avail_bytes).align_up(4);
        QueueLayout {
            size,
            desc,
            avail,
            used,
        }
    }

    /// Total bytes of guest memory the rings occupy (from `desc` to the
    /// end of the used ring).
    pub fn footprint(&self) -> u64 {
        let used_bytes = 2 + 2 + 8 * u64::from(self.size) + 2;
        (self.used + used_bytes) - self.desc
    }

    fn desc_addr(&self, index: u16) -> GuestAddr {
        self.desc + u64::from(index) * DESC_ENTRY
    }

    fn avail_idx_addr(&self) -> GuestAddr {
        self.avail + 2
    }

    fn avail_ring_addr(&self, slot: u16) -> GuestAddr {
        self.avail + 4 + 2 * u64::from(slot)
    }

    fn used_flags_addr(&self) -> GuestAddr {
        self.used
    }

    fn used_idx_addr(&self) -> GuestAddr {
        self.used + 2
    }

    fn used_ring_addr(&self, slot: u16) -> GuestAddr {
        self.used + 4 + 8 * u64::from(slot)
    }

    /// Address of the driver's `used_event` field (tail of the avail
    /// ring; meaningful only with EVENT_IDX negotiated).
    pub fn used_event_addr(&self) -> GuestAddr {
        self.avail + 4 + 2 * u64::from(self.size)
    }

    /// Address of the device's `avail_event` field (tail of the used
    /// ring; meaningful only with EVENT_IDX negotiated).
    pub fn avail_event_addr(&self) -> GuestAddr {
        self.used + 4 + 8 * u64::from(self.size)
    }
}

/// One descriptor, as read from the table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Descriptor {
    addr: u64,
    len: u32,
    flags: u16,
    next: u16,
}

fn read_descriptor(ram: &GuestRam, at: GuestAddr) -> Result<Descriptor, VirtioError> {
    Ok(Descriptor {
        addr: ram.read_u64(at)?,
        len: ram.read_u32(at + 8)?,
        flags: ram.read_u16(at + 12)?,
        next: ram.read_u16(at + 14)?,
    })
}

/// A popped descriptor chain: the head index to return through the used
/// ring, plus the driver-readable and device-writable buffer lists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DescChain {
    /// Head descriptor index (the used-ring id).
    pub head: u16,
    /// Buffers the device may read (request data).
    pub readable: SgList,
    /// Buffers the device may write (response data).
    pub writable: SgList,
}

impl DescChain {
    /// Total bytes across both directions.
    pub fn total_len(&self) -> u64 {
        self.readable.total_len() + self.writable.total_len()
    }
}

/// Device-side view of one split virtqueue.
///
/// Holds only the device's private cursors (`last_avail_idx`,
/// `used_idx`); all shared state lives in guest RAM, as on hardware.
#[derive(Debug, Clone)]
pub struct Virtqueue {
    layout: QueueLayout,
    last_avail_idx: u16,
    used_idx: u16,
    popped: u64,
    completed: u64,
}

impl Virtqueue {
    /// Creates a device-side queue over `layout`.
    pub fn new(layout: QueueLayout) -> Self {
        Virtqueue {
            layout,
            last_avail_idx: 0,
            used_idx: 0,
            popped: 0,
            completed: 0,
        }
    }

    /// The queue's memory layout.
    pub fn layout(&self) -> &QueueLayout {
        &self.layout
    }

    /// Queue size in descriptors.
    pub fn size(&self) -> u16 {
        self.layout.size
    }

    /// Number of avail entries not yet popped by the device.
    ///
    /// # Errors
    ///
    /// Fails if the avail index cannot be read from guest RAM.
    pub fn pending(&self, ram: &GuestRam) -> Result<u16, VirtioError> {
        let avail_idx = ram.read_u16(self.layout.avail_idx_addr())?;
        Ok(avail_idx.wrapping_sub(self.last_avail_idx))
    }

    /// Pops the next available descriptor chain, if any.
    ///
    /// # Errors
    ///
    /// Returns a [`VirtioError`] if the driver's ring state is malformed
    /// (out-of-range indices, loops, readable-after-writable, bad
    /// indirect tables, memory faults). The queue's cursor still
    /// advances past the bad entry so one malformed chain cannot wedge
    /// the queue.
    pub fn pop_avail(&mut self, ram: &GuestRam) -> Result<Option<DescChain>, VirtioError> {
        if self.pending(ram)? == 0 {
            return Ok(None);
        }
        let slot = self.last_avail_idx % self.layout.size;
        let head = ram.read_u16(self.layout.avail_ring_addr(slot))?;
        self.last_avail_idx = self.last_avail_idx.wrapping_add(1);
        if head >= self.layout.size {
            return Err(VirtioError::BadHeadIndex(head));
        }
        let chain = self.walk_chain(ram, head)?;
        self.popped += 1;
        telemetry::counter("virtio.chains_popped", 1);
        Ok(Some(chain))
    }

    fn walk_chain(&self, ram: &GuestRam, head: u16) -> Result<DescChain, VirtioError> {
        let mut readable = SgList::new();
        let mut writable = SgList::new();
        let mut index = head;
        let mut hops = 0u32;
        loop {
            if hops >= u32::from(self.layout.size) {
                return Err(VirtioError::ChainTooLong);
            }
            hops += 1;
            let desc = read_descriptor(ram, self.layout.desc_addr(index))?;
            if desc.flags & DESC_F_INDIRECT != 0 {
                if desc.flags & DESC_F_NEXT != 0 {
                    return Err(VirtioError::BadIndirect("INDIRECT combined with NEXT"));
                }
                if desc.len % 16 != 0 || desc.len == 0 {
                    return Err(VirtioError::BadIndirect(
                        "table length not a multiple of 16",
                    ));
                }
                self.walk_indirect(ram, desc, &mut readable, &mut writable)?;
                break;
            }
            let seg = SgSegment::new(GuestAddr::new(desc.addr), desc.len);
            if desc.flags & DESC_F_WRITE != 0 {
                writable.push(seg);
            } else {
                if !writable.is_empty() {
                    return Err(VirtioError::ReadableAfterWritable);
                }
                readable.push(seg);
            }
            if desc.flags & DESC_F_NEXT == 0 {
                break;
            }
            if desc.next >= self.layout.size {
                return Err(VirtioError::BadNextIndex(desc.next));
            }
            index = desc.next;
        }
        Ok(DescChain {
            head,
            readable,
            writable,
        })
    }

    fn walk_indirect(
        &self,
        ram: &GuestRam,
        table: Descriptor,
        readable: &mut SgList,
        writable: &mut SgList,
    ) -> Result<(), VirtioError> {
        let count = table.len / 16;
        if count > u32::from(self.layout.size) {
            return Err(VirtioError::BadIndirect("table larger than queue size"));
        }
        let base = GuestAddr::new(table.addr);
        let mut index = 0u32;
        let mut hops = 0u32;
        loop {
            if hops >= count {
                return Err(VirtioError::BadIndirect("chain loops inside table"));
            }
            hops += 1;
            let desc = read_descriptor(ram, base + u64::from(index) * DESC_ENTRY)?;
            if desc.flags & DESC_F_INDIRECT != 0 {
                return Err(VirtioError::BadIndirect("nested indirect descriptor"));
            }
            let seg = SgSegment::new(GuestAddr::new(desc.addr), desc.len);
            if desc.flags & DESC_F_WRITE != 0 {
                writable.push(seg);
            } else {
                if !writable.is_empty() {
                    return Err(VirtioError::ReadableAfterWritable);
                }
                readable.push(seg);
            }
            if desc.flags & DESC_F_NEXT == 0 {
                return Ok(());
            }
            if u32::from(desc.next) >= count {
                return Err(VirtioError::BadIndirect("next beyond table"));
            }
            index = u32::from(desc.next);
        }
    }

    /// Completes a chain: writes `(head, written)` into the used ring and
    /// publishes the new used index.
    ///
    /// # Errors
    ///
    /// Fails on guest memory faults.
    pub fn push_used(
        &mut self,
        ram: &mut GuestRam,
        head: u16,
        written: u32,
    ) -> Result<(), VirtioError> {
        let slot = self.used_idx % self.layout.size;
        let at = self.layout.used_ring_addr(slot);
        ram.write_u32(at, u32::from(head))?;
        ram.write_u32(at + 4, written)?;
        self.used_idx = self.used_idx.wrapping_add(1);
        ram.write_u16(self.layout.used_idx_addr(), self.used_idx)?;
        self.completed += 1;
        telemetry::counter("virtio.used_completions", 1);
        Ok(())
    }

    /// Whether the driver suppressed completion interrupts
    /// (`AVAIL_F_NO_INTERRUPT`).
    ///
    /// # Errors
    ///
    /// Fails on guest memory faults.
    pub fn interrupts_suppressed(&self, ram: &GuestRam) -> Result<bool, VirtioError> {
        Ok(ram.read_u16(self.layout.avail)? & AVAIL_F_NO_INTERRUPT != 0)
    }

    /// With EVENT_IDX negotiated: whether completing entries up to the
    /// current used index (having previously published `old_used_idx`)
    /// must interrupt the driver, per its `used_event` threshold
    /// (virtio 1.1 §2.6.8.2).
    ///
    /// # Errors
    ///
    /// Fails on guest memory faults.
    pub fn needs_interrupt_event_idx(
        &self,
        ram: &GuestRam,
        old_used_idx: u16,
    ) -> Result<bool, VirtioError> {
        let used_event = ram.read_u16(self.layout.used_event_addr())?;
        Ok(need_event(used_event, self.used_idx, old_used_idx))
    }

    /// With EVENT_IDX negotiated: publishes the device's `avail_event`,
    /// telling the driver "kick me once the avail index passes this".
    /// Poll-mode backends set it far ahead to suppress all kicks.
    ///
    /// # Errors
    ///
    /// Fails on guest memory faults.
    pub fn set_avail_event(&mut self, ram: &mut GuestRam, value: u16) -> Result<(), VirtioError> {
        ram.write_u16(self.layout.avail_event_addr(), value)?;
        Ok(())
    }

    /// Sets or clears `USED_F_NO_NOTIFY`, telling the driver whether
    /// kicks are needed. Poll-mode backends set this (§3.4.2: "PMD polls
    /// the virtio devices for I/O requests instead of relying on
    /// interrupts").
    ///
    /// # Errors
    ///
    /// Fails on guest memory faults.
    pub fn set_no_notify(
        &mut self,
        ram: &mut GuestRam,
        no_notify: bool,
    ) -> Result<(), VirtioError> {
        ram.write_u16(
            self.layout.used_flags_addr(),
            if no_notify { USED_F_NO_NOTIFY } else { 0 },
        )?;
        Ok(())
    }

    /// Total chains popped so far.
    pub fn popped_count(&self) -> u64 {
        self.popped
    }

    /// Total chains completed so far.
    pub fn completed_count(&self) -> u64 {
        self.completed
    }

    /// The device's current used index (for shadow-ring synchronisation).
    pub fn used_idx(&self) -> u16 {
        self.used_idx
    }

    /// The device's avail cursor (for shadow-ring synchronisation).
    pub fn last_avail_idx(&self) -> u16 {
        self.last_avail_idx
    }

    /// Restores the device's private cursors from a snapshot — the live
    /// upgrade path (§6): a new backend process resumes consuming a ring
    /// exactly where its predecessor stopped.
    pub fn restore_cursors(&mut self, last_avail_idx: u16, used_idx: u16) {
        self.last_avail_idx = last_avail_idx;
        self.used_idx = used_idx;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::VirtqueueDriver;

    fn setup(size: u16) -> (GuestRam, VirtqueueDriver, Virtqueue) {
        let mut ram = GuestRam::new(1 << 20);
        let layout = QueueLayout::contiguous(GuestAddr::new(0x1000), size);
        let driver = VirtqueueDriver::new(&mut ram, layout).unwrap();
        let device = Virtqueue::new(layout);
        (ram, driver, device)
    }

    #[test]
    fn layout_is_ordered_and_aligned() {
        let l = QueueLayout::contiguous(GuestAddr::new(0x1000), 256);
        assert!(l.desc < l.avail && l.avail < l.used);
        assert!(l.used.is_aligned(4));
        assert_eq!(l.avail - l.desc, 256 * 16);
        assert!(l.footprint() > 0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn layout_rejects_non_power_of_two() {
        QueueLayout::contiguous(GuestAddr::new(0x1000), 3);
    }

    #[test]
    fn empty_queue_pops_none() {
        let (ram, _driver, mut device) = setup(8);
        assert_eq!(device.pop_avail(&ram).unwrap(), None);
        assert_eq!(device.pending(&ram).unwrap(), 0);
    }

    #[test]
    fn single_readable_buffer_round_trip() {
        let (mut ram, mut driver, mut device) = setup(8);
        ram.write(GuestAddr::new(0x5000), b"hello").unwrap();
        let head = driver
            .add_buf(&mut ram, &[SgSegment::new(GuestAddr::new(0x5000), 5)], &[])
            .unwrap();
        assert_eq!(device.pending(&ram).unwrap(), 1);
        let chain = device.pop_avail(&ram).unwrap().unwrap();
        assert_eq!(chain.head, head);
        assert_eq!(chain.readable.gather(&ram).unwrap(), b"hello");
        assert!(chain.writable.is_empty());
        device.push_used(&mut ram, chain.head, 0).unwrap();
        assert_eq!(driver.poll_used(&ram).unwrap(), Some((head, 0)));
    }

    #[test]
    fn mixed_chain_orders_readable_then_writable() {
        let (mut ram, mut driver, mut device) = setup(8);
        let head = driver
            .add_buf(
                &mut ram,
                &[
                    SgSegment::new(GuestAddr::new(0x5000), 16),
                    SgSegment::new(GuestAddr::new(0x5100), 16),
                ],
                &[SgSegment::new(GuestAddr::new(0x6000), 64)],
            )
            .unwrap();
        let chain = device.pop_avail(&ram).unwrap().unwrap();
        assert_eq!(chain.head, head);
        assert_eq!(chain.readable.total_len(), 32);
        assert_eq!(chain.writable.total_len(), 64);
        // Device writes a response into the writable part.
        chain.writable.scatter(&mut ram, b"response").unwrap();
        device.push_used(&mut ram, chain.head, 8).unwrap();
        let (id, len) = driver.poll_used(&ram).unwrap().unwrap();
        assert_eq!((id, len), (head, 8));
        assert_eq!(
            ram.read_vec(GuestAddr::new(0x6000), 8).unwrap(),
            b"response"
        );
    }

    #[test]
    fn ring_wraps_around() {
        let (mut ram, mut driver, mut device) = setup(4);
        // Cycle 3× the queue size to exercise wrapping of both rings.
        for round in 0u32..12 {
            let head = driver
                .add_buf(&mut ram, &[SgSegment::new(GuestAddr::new(0x5000), 4)], &[])
                .unwrap();
            let chain = device.pop_avail(&ram).unwrap().unwrap();
            device.push_used(&mut ram, chain.head, round).unwrap();
            assert_eq!(driver.poll_used(&ram).unwrap(), Some((head, round)));
        }
        assert_eq!(device.popped_count(), 12);
        assert_eq!(device.completed_count(), 12);
    }

    #[test]
    fn queue_fills_to_capacity() {
        let (mut ram, mut driver, mut device) = setup(4);
        for _ in 0..4 {
            driver
                .add_buf(&mut ram, &[SgSegment::new(GuestAddr::new(0x5000), 4)], &[])
                .unwrap();
        }
        // Fifth add fails: no free descriptors.
        assert!(driver
            .add_buf(&mut ram, &[SgSegment::new(GuestAddr::new(0x5000), 4)], &[])
            .is_err());
        assert_eq!(device.pending(&ram).unwrap(), 4);
        // Device drains and completes; driver can then add again.
        while let Some(chain) = device.pop_avail(&ram).unwrap() {
            device.push_used(&mut ram, chain.head, 0).unwrap();
        }
        while driver.poll_used(&ram).unwrap().is_some() {}
        assert!(driver
            .add_buf(&mut ram, &[SgSegment::new(GuestAddr::new(0x5000), 4)], &[])
            .is_ok());
    }

    #[test]
    fn indirect_chain_round_trip() {
        let (mut ram, mut driver, mut device) = setup(8);
        ram.write(GuestAddr::new(0x5000), b"abcd").unwrap();
        let head = driver
            .add_buf_indirect(
                &mut ram,
                GuestAddr::new(0x9000),
                &[SgSegment::new(GuestAddr::new(0x5000), 4)],
                &[SgSegment::new(GuestAddr::new(0x6000), 8)],
            )
            .unwrap();
        let chain = device.pop_avail(&ram).unwrap().unwrap();
        assert_eq!(chain.head, head);
        assert_eq!(chain.readable.gather(&ram).unwrap(), b"abcd");
        assert_eq!(chain.writable.total_len(), 8);
        device.push_used(&mut ram, chain.head, 4).unwrap();
        assert_eq!(driver.poll_used(&ram).unwrap(), Some((head, 4)));
    }

    #[test]
    fn malicious_head_index_is_an_error_not_a_panic() {
        let (mut ram, _driver, mut device) = setup(8);
        let layout = *device.layout();
        // Forge an avail entry pointing beyond the table.
        ram.write_u16(layout.avail_ring_addr(0), 100).unwrap();
        ram.write_u16(layout.avail_idx_addr(), 1).unwrap();
        assert_eq!(device.pop_avail(&ram), Err(VirtioError::BadHeadIndex(100)));
        // Queue advanced past the bad entry; it is not wedged.
        assert_eq!(device.pop_avail(&ram).unwrap(), None);
    }

    #[test]
    fn descriptor_loop_is_detected() {
        let (mut ram, _driver, mut device) = setup(8);
        let layout = *device.layout();
        // Descriptor 0 chains to itself.
        ram.write_u64(layout.desc_addr(0), 0x5000).unwrap();
        ram.write_u32(layout.desc_addr(0) + 8, 4).unwrap();
        ram.write_u16(layout.desc_addr(0) + 12, DESC_F_NEXT)
            .unwrap();
        ram.write_u16(layout.desc_addr(0) + 14, 0).unwrap();
        ram.write_u16(layout.avail_ring_addr(0), 0).unwrap();
        ram.write_u16(layout.avail_idx_addr(), 1).unwrap();
        assert_eq!(device.pop_avail(&ram), Err(VirtioError::ChainTooLong));
    }

    #[test]
    fn bad_next_index_is_detected() {
        let (mut ram, _driver, mut device) = setup(8);
        let layout = *device.layout();
        ram.write_u64(layout.desc_addr(0), 0x5000).unwrap();
        ram.write_u32(layout.desc_addr(0) + 8, 4).unwrap();
        ram.write_u16(layout.desc_addr(0) + 12, DESC_F_NEXT)
            .unwrap();
        ram.write_u16(layout.desc_addr(0) + 14, 99).unwrap();
        ram.write_u16(layout.avail_ring_addr(0), 0).unwrap();
        ram.write_u16(layout.avail_idx_addr(), 1).unwrap();
        assert_eq!(device.pop_avail(&ram), Err(VirtioError::BadNextIndex(99)));
    }

    #[test]
    fn readable_after_writable_is_rejected() {
        let (mut ram, _driver, mut device) = setup(8);
        let layout = *device.layout();
        // desc 0: writable, next -> 1; desc 1: readable.
        ram.write_u64(layout.desc_addr(0), 0x5000).unwrap();
        ram.write_u32(layout.desc_addr(0) + 8, 4).unwrap();
        ram.write_u16(layout.desc_addr(0) + 12, DESC_F_WRITE | DESC_F_NEXT)
            .unwrap();
        ram.write_u16(layout.desc_addr(0) + 14, 1).unwrap();
        ram.write_u64(layout.desc_addr(1), 0x6000).unwrap();
        ram.write_u32(layout.desc_addr(1) + 8, 4).unwrap();
        ram.write_u16(layout.desc_addr(1) + 12, 0).unwrap();
        ram.write_u16(layout.avail_ring_addr(0), 0).unwrap();
        ram.write_u16(layout.avail_idx_addr(), 1).unwrap();
        assert_eq!(
            device.pop_avail(&ram),
            Err(VirtioError::ReadableAfterWritable)
        );
    }

    #[test]
    fn nested_indirect_is_rejected() {
        let (mut ram, _driver, mut device) = setup(8);
        let layout = *device.layout();
        // desc 0: indirect table at 0x9000 with one entry that is itself
        // indirect.
        ram.write_u64(layout.desc_addr(0), 0x9000).unwrap();
        ram.write_u32(layout.desc_addr(0) + 8, 16).unwrap();
        ram.write_u16(layout.desc_addr(0) + 12, DESC_F_INDIRECT)
            .unwrap();
        ram.write_u64(GuestAddr::new(0x9000), 0x5000).unwrap();
        ram.write_u32(GuestAddr::new(0x9000 + 8), 4).unwrap();
        ram.write_u16(GuestAddr::new(0x9000 + 12), DESC_F_INDIRECT)
            .unwrap();
        ram.write_u16(layout.avail_ring_addr(0), 0).unwrap();
        ram.write_u16(layout.avail_idx_addr(), 1).unwrap();
        assert!(matches!(
            device.pop_avail(&ram),
            Err(VirtioError::BadIndirect(_))
        ));
    }

    #[test]
    fn notification_suppression_flags() {
        let (mut ram, mut driver, mut device) = setup(8);
        assert!(driver.kick_needed(&ram).unwrap());
        device.set_no_notify(&mut ram, true).unwrap();
        assert!(!driver.kick_needed(&ram).unwrap());
        device.set_no_notify(&mut ram, false).unwrap();
        assert!(driver.kick_needed(&ram).unwrap());

        assert!(!device.interrupts_suppressed(&ram).unwrap());
        driver.set_no_interrupt(&mut ram, true).unwrap();
        assert!(device.interrupts_suppressed(&ram).unwrap());
    }

    #[test]
    fn event_idx_coalesces_interrupts() {
        let (mut ram, mut driver, mut device) = setup(8);
        // Driver asks: interrupt me only after 3 completions (used idx
        // passes last_used + 2).
        driver
            .set_used_event(&mut ram, driver.last_used_idx().wrapping_add(2))
            .unwrap();
        let mut interrupts = 0;
        for i in 0..3u32 {
            driver
                .add_buf(&mut ram, &[SgSegment::new(GuestAddr::new(0x5000), 4)], &[])
                .unwrap();
            let chain = device.pop_avail(&ram).unwrap().unwrap();
            let old_used = device.used_idx();
            device.push_used(&mut ram, chain.head, i).unwrap();
            if device.needs_interrupt_event_idx(&ram, old_used).unwrap() {
                interrupts += 1;
            }
        }
        // Only the third completion (crossing the threshold) interrupts.
        assert_eq!(interrupts, 1);
    }

    #[test]
    fn event_idx_suppresses_kicks_for_a_polling_backend() {
        let (mut ram, mut driver, mut device) = setup(8);
        // A PMD backend sets avail_event far ahead: no kick needed.
        device
            .set_avail_event(&mut ram, driver.avail_idx().wrapping_add(1000))
            .unwrap();
        let old = driver.avail_idx();
        driver
            .add_buf(&mut ram, &[SgSegment::new(GuestAddr::new(0x5000), 4)], &[])
            .unwrap();
        assert!(!driver.kick_needed_event_idx(&ram, old).unwrap());
        // An interrupt-mode backend sets it to the next entry: kick.
        device
            .set_avail_event(&mut ram, driver.avail_idx())
            .unwrap();
        let old = driver.avail_idx();
        driver
            .add_buf(&mut ram, &[SgSegment::new(GuestAddr::new(0x5100), 4)], &[])
            .unwrap();
        assert!(driver.kick_needed_event_idx(&ram, old).unwrap());
    }

    #[test]
    fn need_event_handles_wraparound() {
        // Crossing the threshold across the u16 wrap.
        assert!(need_event(0xfffe, 0x0001, 0xfffd));
        assert!(!need_event(0x0005, 0x0001, 0xfffd));
        // Degenerate: no movement means no event.
        assert!(!need_event(10, 20, 20));
    }

    #[test]
    fn error_display_messages() {
        assert!(VirtioError::ChainTooLong.to_string().contains("chain"));
        assert!(VirtioError::BadHeadIndex(7).to_string().contains('7'));
        let mem_err: VirtioError = MemError::OutOfBounds {
            addr: GuestAddr::new(0),
            len: 1,
            size: 1,
        }
        .into();
        assert!(mem_err.to_string().contains("memory fault"));
    }
}
