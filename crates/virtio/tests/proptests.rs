// This suite depends on the external `proptest` crate, which is not
// vendored; it only compiles with `--features bench-deps` after the
// proptest dev-dependency is restored in Cargo.toml.
#![cfg(feature = "bench-deps")]

//! Property-based tests for the virtqueue: the invariants that make the
//! driver/device contract safe against arbitrary (including adversarial)
//! interleavings.

use bmhive_mem::{GuestAddr, GuestRam, SgSegment};
use bmhive_virtio::{
    PackedDevice, PackedDriver, PackedLayout, QueueLayout, Virtqueue, VirtqueueDriver,
};
use proptest::prelude::*;

const DATA_BASE: u64 = 0x40_000;

fn setup(size: u16) -> (GuestRam, VirtqueueDriver, Virtqueue) {
    let mut ram = GuestRam::new(1 << 20);
    let layout = QueueLayout::contiguous(GuestAddr::new(0x1000), size);
    let driver = VirtqueueDriver::new(&mut ram, layout).unwrap();
    let device = Virtqueue::new(layout);
    (ram, driver, device)
}

proptest! {
    /// Whatever mix of posts and completions happens, no descriptor is
    /// ever leaked or double-allocated: after draining, every descriptor
    /// is free again.
    #[test]
    fn descriptors_are_conserved(
        ops in prop::collection::vec((1usize..4, 0usize..3, any::<bool>()), 1..100),
    ) {
        let size = 32u16;
        let (mut ram, mut driver, mut device) = setup(size);
        for (n_read, n_write, drain_now) in ops {
            let readable: Vec<SgSegment> = (0..n_read)
                .map(|i| SgSegment::new(GuestAddr::new(DATA_BASE + (i as u64) * 256), 64))
                .collect();
            let writable: Vec<SgSegment> = (0..n_write)
                .map(|i| SgSegment::new(GuestAddr::new(DATA_BASE + 0x8000 + (i as u64) * 256), 64))
                .collect();
            // Post if room; otherwise skip (the error path is tested in
            // unit tests).
            let _ = driver.add_buf(&mut ram, &readable, &writable);
            if drain_now {
                while let Some(chain) = device.pop_avail(&ram).unwrap() {
                    device.push_used(&mut ram, chain.head, 0).unwrap();
                }
                while driver.poll_used(&ram).unwrap().is_some() {}
            }
        }
        // Final drain.
        while let Some(chain) = device.pop_avail(&ram).unwrap() {
            device.push_used(&mut ram, chain.head, 0).unwrap();
        }
        while driver.poll_used(&ram).unwrap().is_some() {}
        prop_assert_eq!(driver.num_free(), size);
        prop_assert_eq!(driver.outstanding(), 0);
        prop_assert_eq!(device.popped_count(), device.completed_count());
    }

    /// Payload bytes survive the queue: what the driver posts as readable
    /// is exactly what the device gathers, for arbitrary payloads and
    /// segmentation.
    #[test]
    fn payload_integrity(
        payload in prop::collection::vec(any::<u8>(), 1..2048),
        cuts in prop::collection::vec(1usize..2048, 0..4),
    ) {
        let (mut ram, mut driver, mut device) = setup(64);
        // Split the payload at the given cut points into segments.
        let mut bounds: Vec<usize> = cuts.into_iter().map(|c| c % payload.len()).collect();
        bounds.push(0);
        bounds.push(payload.len());
        bounds.sort_unstable();
        bounds.dedup();
        let mut segs = Vec::new();
        for w in bounds.windows(2) {
            let (start, end) = (w[0], w[1]);
            if start == end { continue; }
            let addr = GuestAddr::new(DATA_BASE + start as u64);
            ram.write(addr, &payload[start..end]).unwrap();
            segs.push(SgSegment::new(addr, (end - start) as u32));
        }
        driver.add_buf(&mut ram, &segs, &[]).unwrap();
        let chain = device.pop_avail(&ram).unwrap().unwrap();
        prop_assert_eq!(chain.readable.gather(&ram).unwrap(), payload);
        device.push_used(&mut ram, chain.head, 0).unwrap();
    }

    /// The device sees chains in the order the driver posted them (FIFO
    /// through the avail ring), and completions carry the right written
    /// lengths back to the right heads.
    #[test]
    fn avail_order_and_used_lengths(lens in prop::collection::vec(1u32..512, 1..30)) {
        let (mut ram, mut driver, mut device) = setup(32);
        let mut posted = std::collections::VecDeque::new();
        for (i, &len) in lens.iter().enumerate() {
            let seg = SgSegment::new(GuestAddr::new(DATA_BASE + (i as u64) * 1024), 512);
            if let Ok(head) = driver.add_buf(&mut ram, &[], &[seg]) {
                posted.push_back((head, len));
            }
            // Device processes everything pending, writing `len` bytes.
            while let Some(chain) = device.pop_avail(&ram).unwrap() {
                let (expect_head, expect_len) = posted.front().copied().unwrap();
                prop_assert_eq!(chain.head, expect_head);
                device.push_used(&mut ram, chain.head, expect_len).unwrap();
                let (got_head, got_len) = driver.poll_used(&ram).unwrap().unwrap();
                prop_assert_eq!((got_head, got_len), (expect_head, expect_len));
                posted.pop_front();
            }
        }
        prop_assert!(posted.is_empty());
    }

    /// Indirect and direct posting are observationally equivalent to the
    /// device.
    #[test]
    fn indirect_equals_direct(
        payload in prop::collection::vec(any::<u8>(), 1..512),
        n_segs in 1usize..4,
    ) {
        let (mut ram, mut driver_d, mut device_d) = setup(16);
        let seg_len = payload.len().div_ceil(n_segs);
        let mut segs = Vec::new();
        for (i, chunk) in payload.chunks(seg_len).enumerate() {
            let addr = GuestAddr::new(DATA_BASE + (i as u64) * 4096);
            ram.write(addr, chunk).unwrap();
            segs.push(SgSegment::new(addr, chunk.len() as u32));
        }
        driver_d.add_buf(&mut ram, &segs, &[]).unwrap();
        let direct = device_d.pop_avail(&ram).unwrap().unwrap();
        let direct_bytes = direct.readable.gather(&ram).unwrap();

        let mut ram2 = ram.clone();
        let layout2 = QueueLayout::contiguous(GuestAddr::new(0x9000), 16);
        let mut driver_i = VirtqueueDriver::new(&mut ram2, layout2).unwrap();
        let mut device_i = Virtqueue::new(layout2);
        driver_i
            .add_buf_indirect(&mut ram2, GuestAddr::new(0x20_000), &segs, &[])
            .unwrap();
        let indirect = device_i.pop_avail(&ram2).unwrap().unwrap();
        prop_assert_eq!(indirect.readable.gather(&ram2).unwrap(), direct_bytes.clone());
        prop_assert_eq!(direct_bytes, payload);
    }

    /// `need_event` agrees with the direct definition: the event fires
    /// iff the threshold `event` lies in the half-open window
    /// `(old, new]` (mod 2^16), for any distance travelled.
    #[test]
    fn need_event_matches_window_semantics(
        old in any::<u16>(),
        steps in 0u16..1000,
        event_offset in any::<u16>(),
    ) {
        let new = old.wrapping_add(steps);
        let event = old.wrapping_add(event_offset);
        let expected = steps > 0 && u32::from(event.wrapping_sub(old)) >= 1
            && event.wrapping_sub(old) <= steps;
        prop_assert_eq!(
            bmhive_virtio::queue::need_event(event, new, old),
            expected,
            "old {} new {} event {}", old, new, event
        );
    }

    /// The packed ring is observationally equivalent to the split ring:
    /// the same post/complete schedule delivers the same payloads in the
    /// same order, for any ring size (including non-powers-of-two on the
    /// packed side).
    #[test]
    fn packed_ring_equals_split_ring(
        size in 2u16..12,
        ops in prop::collection::vec((1u32..200, any::<bool>()), 1..60),
    ) {
        let split_size = size.next_power_of_two();
        let mut ram_s = GuestRam::new(1 << 20);
        let split_layout = QueueLayout::contiguous(GuestAddr::new(0x1000), split_size);
        let mut sd = VirtqueueDriver::new(&mut ram_s, split_layout).unwrap();
        let mut sv = Virtqueue::new(split_layout);

        let mut ram_p = GuestRam::new(1 << 20);
        let packed_layout = PackedLayout::new(GuestAddr::new(0x1000), split_size);
        let mut pd = PackedDriver::new(&mut ram_p, packed_layout).unwrap();
        let mut pv = PackedDevice::new(packed_layout);

        let mut split_out = Vec::new();
        let mut packed_out = Vec::new();
        for (i, (len, drain)) in ops.iter().enumerate() {
            let addr = GuestAddr::new(0x8000 + (i as u64 % 32) * 256);
            let payload: Vec<u8> = (0..*len).map(|x| (x % 251) as u8).collect();
            ram_s.write(addr, &payload).unwrap();
            ram_p.write(addr, &payload).unwrap();
            let seg = [SgSegment::new(addr, *len)];
            let s_ok = sd.add_buf(&mut ram_s, &seg, &[]).is_ok();
            let p_ok = pd.add_buf(&mut ram_p, &seg, &[]).is_ok();
            prop_assert_eq!(s_ok, p_ok, "rings fill identically");
            if *drain {
                loop {
                    let s = sv.pop_avail(&ram_s).unwrap();
                    let p = pv.pop_avail(&ram_p).unwrap();
                    prop_assert_eq!(s.is_some(), p.is_some());
                    let (Some(s), Some(p)) = (s, p) else { break };
                    split_out.push(s.readable.gather(&ram_s).unwrap());
                    packed_out.push(p.readable.gather(&ram_p).unwrap());
                    sv.push_used(&mut ram_s, s.head, 0).unwrap();
                    pv.push_used(&mut ram_p, &p, 0).unwrap();
                    sd.poll_used(&ram_s).unwrap().unwrap();
                    pd.poll_used(&ram_p).unwrap().unwrap();
                }
            }
        }
        prop_assert_eq!(split_out, packed_out);
    }

    /// Packed-ring descriptor conservation across arbitrary mixed
    /// chains and drains.
    #[test]
    fn packed_descriptors_conserved(
        ops in prop::collection::vec((1usize..4, 0usize..3, any::<bool>()), 1..80),
    ) {
        let size = 16u16;
        let mut ram = GuestRam::new(1 << 20);
        let layout = PackedLayout::new(GuestAddr::new(0x1000), size);
        let mut driver = PackedDriver::new(&mut ram, layout).unwrap();
        let mut device = PackedDevice::new(layout);
        for (n_read, n_write, drain) in ops {
            let readable: Vec<SgSegment> = (0..n_read)
                .map(|i| SgSegment::new(GuestAddr::new(0x8000 + (i as u64) * 256), 64))
                .collect();
            let writable: Vec<SgSegment> = (0..n_write)
                .map(|i| SgSegment::new(GuestAddr::new(0xa000 + (i as u64) * 256), 64))
                .collect();
            let _ = driver.add_buf(&mut ram, &readable, &writable);
            if drain {
                while let Some(chain) = device.pop_avail(&ram).unwrap() {
                    device.push_used(&mut ram, &chain, 0).unwrap();
                }
                while driver.poll_used(&ram).unwrap().is_some() {}
            }
        }
        while let Some(chain) = device.pop_avail(&ram).unwrap() {
            device.push_used(&mut ram, &chain, 0).unwrap();
        }
        while driver.poll_used(&ram).unwrap().is_some() {}
        prop_assert_eq!(driver.num_free(), size);
    }

    /// A device walking rings filled with arbitrary garbage never
    /// panics: it returns Ok(None), Ok(chain) or a typed error.
    #[test]
    fn fuzzed_rings_never_panic(garbage in prop::collection::vec(any::<u8>(), 256..2048)) {
        let mut ram = GuestRam::new(1 << 20);
        let layout = QueueLayout::contiguous(GuestAddr::new(0x1000), 16);
        ram.write(GuestAddr::new(0x1000), &garbage).unwrap();
        let mut device = Virtqueue::new(layout);
        for _ in 0..64 {
            // Both outcomes are acceptable; panicking is not.
            let _ = device.pop_avail(&ram);
        }
    }
}
