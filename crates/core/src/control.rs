//! The cloud control-plane interface (§3.2–3.3).
//!
//! "The bm-hypervisor ... interfaces with the cloud infrastructure.
//! Because the bm-hypervisor supports the same cloud interface as the
//! vm-hypervisor, it can seamlessly integrate into the existing cloud
//! infrastructure." [`ControlPlane`] is that interface: the typed
//! request/response protocol the region scheduler speaks to every
//! server, identical whether the server hosts vm-guests or bm-guests —
//! the difference is invisible above this line.

use crate::server::{BmHiveServer, BoardId, GuestId};
use bmhive_cloud::catalog::{InstanceType, INSTANCE_CATALOG};
use bmhive_cloud::image::{ImageId, ImageService};
use bmhive_sim::{SimDuration, SimTime};
use std::collections::HashMap;

/// A request from the cloud infrastructure to one server agent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ControlRequest {
    /// Provision a guest: pick an idle board of the instance type, power
    /// it on with the image.
    CreateGuest {
        /// Catalog instance name (e.g. `"ebm.e5.32xlarge"`).
        instance: String,
        /// Image to boot.
        image: ImageId,
    },
    /// Tear a guest down and free its board.
    DestroyGuest {
        /// The guest.
        guest: GuestId,
    },
    /// Report a guest's status.
    QueryGuest {
        /// The guest.
        guest: GuestId,
    },
    /// Report free capacity per instance type.
    QueryCapacity,
}

/// A server agent's reply.
#[derive(Debug, Clone, PartialEq)]
pub enum ControlResponse {
    /// Guest provisioned.
    Created {
        /// The new guest handle.
        guest: GuestId,
        /// Its MAC on the cloud network.
        mac: String,
        /// Boot wall time.
        boot_time: SimDuration,
    },
    /// Guest destroyed.
    Destroyed,
    /// Guest status.
    Status {
        /// Packets sent / received, block ops.
        counters: (u64, u64, u64),
        /// Whether the guest is running.
        running: bool,
    },
    /// Free board capacity by instance name.
    Capacity(Vec<(String, u32)>),
    /// The request failed.
    Error(String),
}

/// One server's control-plane agent: owns the server, a pool of
/// pre-installed boards per instance type, and the image registry
/// handle.
#[derive(Debug)]
pub struct ControlPlane {
    server: BmHiveServer,
    images: ImageService,
    /// Idle boards by instance name.
    idle_boards: HashMap<String, Vec<BoardId>>,
    /// Which board each live guest occupies (for release).
    guest_board: HashMap<GuestId, (String, BoardId)>,
}

impl ControlPlane {
    /// Wraps a server and pre-installs `boards_per_type` boards of each
    /// catalog instance that still fits.
    pub fn new(mut server: BmHiveServer, images: ImageService, boards_per_type: u32) -> Self {
        let mut idle_boards: HashMap<String, Vec<BoardId>> = HashMap::new();
        for instance in INSTANCE_CATALOG {
            for _ in 0..boards_per_type {
                match server.install_board(instance) {
                    Ok(board) => idle_boards
                        .entry(instance.name.to_string())
                        .or_default()
                        .push(board),
                    Err(_) => break,
                }
            }
        }
        ControlPlane {
            server,
            images,
            idle_boards,
            guest_board: HashMap::new(),
        }
    }

    /// The wrapped server (for workload drivers).
    pub fn server_mut(&mut self) -> &mut BmHiveServer {
        &mut self.server
    }

    /// The image registry.
    pub fn images_mut(&mut self) -> &mut ImageService {
        &mut self.images
    }

    fn find_instance(name: &str) -> Option<&'static InstanceType> {
        INSTANCE_CATALOG.iter().find(|i| i.name == name)
    }

    /// Handles one control request at simulated time `now`.
    pub fn handle(&mut self, request: ControlRequest, now: SimTime) -> ControlResponse {
        match request {
            ControlRequest::CreateGuest { instance, image } => {
                if Self::find_instance(&instance).is_none() {
                    return ControlResponse::Error(format!("unknown instance type '{instance}'"));
                }
                let Some(image) = self.images.get(image).cloned() else {
                    return ControlResponse::Error("unknown image".to_string());
                };
                let Some(board) = self
                    .idle_boards
                    .get_mut(&instance)
                    .and_then(|boards| boards.pop())
                else {
                    return ControlResponse::Error(format!("no idle {instance} board"));
                };
                match self.server.power_on(board, &image, now) {
                    Ok(guest) => {
                        self.guest_board.insert(guest, (instance, board));
                        let boot = self.server.boot_report(guest).expect("just booted");
                        let mac = self.server.guest_mac(guest).expect("just booted");
                        ControlResponse::Created {
                            guest,
                            mac: mac.to_string(),
                            boot_time: boot.duration,
                        }
                    }
                    Err(e) => {
                        // The board stays usable; return it to the pool.
                        self.idle_boards
                            .get_mut(&instance)
                            .expect("pool exists")
                            .push(board);
                        ControlResponse::Error(e.to_string())
                    }
                }
            }
            ControlRequest::DestroyGuest { guest } => {
                let Some((instance, board)) = self.guest_board.remove(&guest) else {
                    return ControlResponse::Error("unknown guest".to_string());
                };
                match self.server.power_off(guest) {
                    Ok(()) => {
                        self.idle_boards.entry(instance).or_default().push(board);
                        ControlResponse::Destroyed
                    }
                    Err(e) => ControlResponse::Error(e.to_string()),
                }
            }
            ControlRequest::QueryGuest { guest } => match self.server.guest_mut(guest) {
                Ok(session) => ControlResponse::Status {
                    counters: session.counters(),
                    running: true,
                },
                Err(_) => ControlResponse::Status {
                    counters: (0, 0, 0),
                    running: false,
                },
            },
            ControlRequest::QueryCapacity => {
                let mut rows: Vec<(String, u32)> = self
                    .idle_boards
                    .iter()
                    .map(|(name, boards)| (name.clone(), boards.len() as u32))
                    .collect();
                rows.sort();
                ControlResponse::Capacity(rows)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bmhive_cloud::catalog::ServerConstraints;
    use bmhive_cloud::image::MachineImage;

    fn plane() -> (ControlPlane, ImageId) {
        let server = BmHiveServer::new(ServerConstraints::production(), 42);
        let mut images = ImageService::new();
        let image = images.register(MachineImage::centos_evaluation(1));
        (ControlPlane::new(server, images, 2), image)
    }

    #[test]
    fn create_query_destroy_round_trip() {
        let (mut plane, image) = plane();
        let response = plane.handle(
            ControlRequest::CreateGuest {
                instance: "ebm.e5.32xlarge".to_string(),
                image,
            },
            SimTime::ZERO,
        );
        let ControlResponse::Created {
            guest,
            mac,
            boot_time,
        } = response
        else {
            panic!("expected Created, got {response:?}");
        };
        assert!(mac.starts_with("52:54:"));
        assert!(boot_time > SimDuration::ZERO);

        let status = plane.handle(ControlRequest::QueryGuest { guest }, SimTime::from_secs(1));
        assert!(matches!(
            status,
            ControlResponse::Status { running: true, .. }
        ));

        assert_eq!(
            plane.handle(
                ControlRequest::DestroyGuest { guest },
                SimTime::from_secs(2)
            ),
            ControlResponse::Destroyed
        );
        let status = plane.handle(ControlRequest::QueryGuest { guest }, SimTime::from_secs(3));
        assert!(matches!(
            status,
            ControlResponse::Status { running: false, .. }
        ));
    }

    #[test]
    fn capacity_tracks_allocations() {
        let (mut plane, image) = plane();
        let before = plane.handle(ControlRequest::QueryCapacity, SimTime::ZERO);
        let ControlResponse::Capacity(rows) = before else {
            panic!()
        };
        let e5_before = rows.iter().find(|(n, _)| n == "ebm.e5.32xlarge").unwrap().1;
        let ControlResponse::Created { guest, .. } = plane.handle(
            ControlRequest::CreateGuest {
                instance: "ebm.e5.32xlarge".to_string(),
                image,
            },
            SimTime::ZERO,
        ) else {
            panic!()
        };
        let ControlResponse::Capacity(rows) =
            plane.handle(ControlRequest::QueryCapacity, SimTime::ZERO)
        else {
            panic!()
        };
        let e5_after = rows.iter().find(|(n, _)| n == "ebm.e5.32xlarge").unwrap().1;
        assert_eq!(e5_after, e5_before - 1);
        plane.handle(ControlRequest::DestroyGuest { guest }, SimTime::ZERO);
        let ControlResponse::Capacity(rows) =
            plane.handle(ControlRequest::QueryCapacity, SimTime::ZERO)
        else {
            panic!()
        };
        assert_eq!(
            rows.iter().find(|(n, _)| n == "ebm.e5.32xlarge").unwrap().1,
            e5_before
        );
    }

    #[test]
    fn errors_are_messages_not_panics() {
        let (mut plane, image) = plane();
        assert!(matches!(
            plane.handle(
                ControlRequest::CreateGuest {
                    instance: "ebm.unobtanium".to_string(),
                    image
                },
                SimTime::ZERO
            ),
            ControlResponse::Error(_)
        ));
        assert!(matches!(
            plane.handle(
                ControlRequest::CreateGuest {
                    instance: "ebm.e5.32xlarge".to_string(),
                    image: bmhive_cloud::image::ImageId(999)
                },
                SimTime::ZERO
            ),
            ControlResponse::Error(_)
        ));
        assert!(matches!(
            plane.handle(
                ControlRequest::DestroyGuest { guest: GuestId(77) },
                SimTime::ZERO
            ),
            ControlResponse::Error(_)
        ));
    }

    #[test]
    fn pool_exhaustion_reports_no_idle_board() {
        let (mut plane, image) = plane();
        // Two pre-installed E5 boards.
        for _ in 0..2 {
            assert!(matches!(
                plane.handle(
                    ControlRequest::CreateGuest {
                        instance: "ebm.e5.32xlarge".to_string(),
                        image
                    },
                    SimTime::ZERO
                ),
                ControlResponse::Created { .. }
            ));
        }
        assert!(matches!(
            plane.handle(
                ControlRequest::CreateGuest {
                    instance: "ebm.e5.32xlarge".to_string(),
                    image
                },
                SimTime::ZERO
            ),
            ControlResponse::Error(_)
        ));
    }
}
