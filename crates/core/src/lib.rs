//! # BM-Hive: a high-density multi-tenant bare-metal cloud
//!
//! A from-scratch reproduction of *High-density Multi-tenant Bare-metal
//! Cloud* (ASPLOS '20): each tenant's guest runs on its own *compute
//! board* — dedicated CPU and memory on a PCIe card — while **IO-Bond**,
//! a hardware–software hybrid virtio bridge, connects the guest to the
//! cloud's network and storage through shadow vrings in the
//! bm-hypervisor's memory.
//!
//! This crate is the façade: it owns the [`BmHiveServer`] type (base
//! server + up to 16 compute boards + vSwitch + cloud services) and
//! re-exports the whole stack through [`prelude`].
//!
//! ## Quickstart
//!
//! ```
//! use bmhive_core::prelude::*;
//!
//! // A production BM-Hive server with one E5 compute board.
//! let mut server = BmHiveServer::new(ServerConstraints::production(), 42);
//! let board = server.install_board(&INSTANCE_CATALOG[0]).unwrap();
//!
//! // Power it on with a stock CentOS image: the EFI firmware boots the
//! // guest over virtio-blk from cloud storage.
//! let image = MachineImage::centos_evaluation(1);
//! let guest = server.power_on(board, &image, SimTime::ZERO).unwrap();
//!
//! // The guest is live: send a packet into the cloud network.
//! let report = server
//!     .guest_send(guest, MacAddr::for_guest(99), b"hello cloud", SimTime::from_secs(1))
//!     .unwrap();
//! assert!(report.latency() > SimDuration::ZERO);
//! ```
//!
//! ## Crate map
//!
//! | Layer | Crate |
//! |---|---|
//! | simulation kernel | `bmhive-sim` |
//! | guest memory / DMA | `bmhive-mem` |
//! | PCIe fabric | `bmhive-pcie` |
//! | virtio (rings, net, blk, pci) | `bmhive-virtio` |
//! | IO-Bond (shadow vrings) | `bmhive-iobond` |
//! | CPU / memory platform models | `bmhive-cpu` |
//! | packet network | `bmhive-net` |
//! | cloud infrastructure | `bmhive-cloud` |
//! | hypervisors (bm + KVM baseline) | `bmhive-hypervisor` |
//! | paper workloads | `bmhive-workloads` |

pub mod control;
pub mod server;

pub use control::{ControlPlane, ControlRequest, ControlResponse};
pub use server::{BmHiveServer, BoardId, GuestId, ServerError};

/// Everything a downstream user typically needs, in one import.
pub mod prelude {
    pub use crate::control::{ControlPlane, ControlRequest, ControlResponse};
    pub use crate::server::{BmHiveServer, BoardId, GuestId, ServerError};
    pub use bmhive_cloud::blockstore::{BlockStore, IoKind, StorageClass};
    pub use bmhive_cloud::catalog::{InstanceType, ServerConstraints, INSTANCE_CATALOG};
    pub use bmhive_cloud::cost::CostModel;
    pub use bmhive_cloud::image::{ImageService, MachineImage};
    pub use bmhive_cloud::limits::InstanceLimits;
    pub use bmhive_cloud::scheduler::Scheduler;
    pub use bmhive_cloud::security::{ServiceKind, ServiceProfile};
    pub use bmhive_cpu::{CpuWork, Platform, VirtTax};
    pub use bmhive_hypervisor::{boot_guest, BmGuestSession, BootReport, IoPath, VmGuestSession};
    pub use bmhive_iobond::{IoBondDevice, IoBondProfile};
    pub use bmhive_net::{MacAddr, NetLink, Packet, PacketKind};
    pub use bmhive_sim::{Histogram, Series, SimDuration, SimRng, SimTime, Summary};
    pub use bmhive_virtio::{
        BlkRequestType, BlkStatus, DeviceType, QueueLayout, Virtqueue, VirtqueueDriver,
    };
    pub use bmhive_workloads::GuestEnv;
}
