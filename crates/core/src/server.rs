//! One BM-Hive server: base + compute boards + cloud attachments.
//!
//! §3.3: "Each bare-metal server consists of the base and a number of
//! compute boards. The base is essentially a simplified Xeon-based
//! server with 16 cores E5 CPU." The base runs one bm-hypervisor
//! process per guest, the DPDK vSwitch, and the uplink to cloud
//! storage. [`BmHiveServer`] manages the full lifecycle — install,
//! power-on (EFI boot over virtio-blk), I/O brokerage through the
//! vSwitch, power-off — while enforcing the chassis constraints
//! (slots, power, uplink).

use bmhive_cloud::blockstore::{BlockStore, StorageClass};
use bmhive_cloud::catalog::{InstanceType, ServerConstraints};
use bmhive_cloud::firmware::{FirmwareError, FirmwareImage, FirmwareStore, SigningKey};
use bmhive_cloud::image::MachineImage;
use bmhive_cloud::vswitch::{Forwarded, PortId, VSwitch};
use bmhive_hypervisor::bm::IoTiming;
use bmhive_hypervisor::{boot_guest, BmGuestSession, BootReport};
use bmhive_iobond::IoBondProfile;
use bmhive_net::{MacAddr, PacketKind};
use bmhive_sim::SimTime;
use bmhive_telemetry as telemetry;
use bmhive_virtio::{BlkRequestType, BlkStatus};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// A compute-board slot on this server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BoardId(pub u32);

/// A powered-on guest on this server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GuestId(pub u32);

/// Server-level failures.
#[derive(Debug)]
pub enum ServerError {
    /// Installing the board would violate a chassis constraint.
    ConstraintViolation(&'static str),
    /// The board / guest id is unknown or in the wrong state.
    BadHandle(&'static str),
    /// The guest failed to boot.
    BootFailed(bmhive_hypervisor::bm::SessionError),
    /// A guest I/O operation failed.
    Io(bmhive_hypervisor::bm::SessionError),
    /// A firmware update was refused.
    Firmware(FirmwareError),
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::ConstraintViolation(why) => {
                write!(f, "chassis constraint violated: {why}")
            }
            ServerError::BadHandle(why) => write!(f, "bad handle: {why}"),
            ServerError::BootFailed(e) => write!(f, "guest boot failed: {e}"),
            ServerError::Io(e) => write!(f, "guest i/o failed: {e}"),
            ServerError::Firmware(e) => write!(f, "firmware update refused: {e}"),
        }
    }
}

impl Error for ServerError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServerError::BootFailed(e) | ServerError::Io(e) => Some(e),
            ServerError::Firmware(e) => Some(e),
            _ => None,
        }
    }
}

#[derive(Debug)]
struct Board {
    instance: InstanceType,
    guest: Option<GuestId>,
    firmware: FirmwareStore,
}

#[derive(Debug)]
struct Guest {
    board: BoardId,
    session: BmGuestSession,
    port: PortId,
    boot: BootReport,
}

/// One BM-Hive server.
#[derive(Debug)]
pub struct BmHiveServer {
    constraints: ServerConstraints,
    profile: IoBondProfile,
    signing_key: SigningKey,
    boards: HashMap<BoardId, Board>,
    guests: HashMap<GuestId, Guest>,
    vswitch: VSwitch,
    store: BlockStore,
    next_board: u32,
    next_guest: u32,
}

impl BmHiveServer {
    /// Creates a server with the given chassis constraints. `seed`
    /// drives every stochastic model on the server deterministically.
    pub fn new(constraints: ServerConstraints, seed: u64) -> Self {
        BmHiveServer {
            constraints,
            profile: IoBondProfile::fpga(),
            // The provider's firmware signing key; the public half lives
            // in every board's fuses (§1).
            signing_key: SigningKey::new(seed ^ 0xf1e3_ba5e),
            boards: HashMap::new(),
            guests: HashMap::new(),
            // §3.4.2: the base dedicates PMD cores to I/O; 5 cores of the
            // 16-core base E5 serve the switch.
            vswitch: VSwitch::new(5),
            store: BlockStore::new(StorageClass::CloudSsd, seed),
            next_board: 0,
            next_guest: 0,
        }
    }

    /// Switches every subsequently-installed board to the ASIC IO-Bond
    /// profile (§6 ablation).
    pub fn set_profile(&mut self, profile: IoBondProfile) {
        self.profile = profile;
    }

    /// The chassis constraints.
    pub fn constraints(&self) -> &ServerConstraints {
        &self.constraints
    }

    /// Installed board count.
    pub fn board_count(&self) -> usize {
        self.boards.len()
    }

    /// Powered-on guest count.
    pub fn guest_count(&self) -> usize {
        self.guests.len()
    }

    fn used_slots(&self) -> u32 {
        self.boards.values().map(|b| b.instance.slot_width).sum()
    }

    fn used_watts(&self) -> f64 {
        self.boards.values().map(|b| b.instance.board_watts()).sum()
    }

    /// Installs a compute board, enforcing slot / power / uplink
    /// constraints (§4.1's Table 3 column).
    ///
    /// # Errors
    ///
    /// [`ServerError::ConstraintViolation`] if the chassis cannot take
    /// the board.
    pub fn install_board(&mut self, instance: &InstanceType) -> Result<BoardId, ServerError> {
        if self.used_slots() + instance.slot_width > self.constraints.slots {
            return Err(ServerError::ConstraintViolation("out of PCIe slots"));
        }
        if self.used_watts() + instance.board_watts() > self.constraints.board_power_budget_watts {
            return Err(ServerError::ConstraintViolation("power budget exceeded"));
        }
        let boards_after = self.boards.len() as u32 + 1;
        if f64::from(boards_after) * self.constraints.min_board_uplink_gbps
            > self.constraints.uplink_gbps
        {
            return Err(ServerError::ConstraintViolation("uplink oversubscribed"));
        }
        let id = BoardId(self.next_board);
        self.next_board += 1;
        let factory = FirmwareImage::signed(
            &self.signing_key,
            "efi-virtio-1.0",
            1,
            b"factory EFI with virtio-blk boot support".to_vec(),
        );
        self.boards.insert(
            id,
            Board {
                instance: *instance,
                guest: None,
                firmware: FirmwareStore::provision(self.signing_key, factory),
            },
        );
        Ok(id)
    }

    /// The provider's firmware signing key (for building update images).
    pub fn signing_key(&self) -> SigningKey {
        self.signing_key
    }

    /// The firmware version installed on a board.
    ///
    /// # Errors
    ///
    /// Fails on unknown boards.
    pub fn board_firmware_version(&self, board: BoardId) -> Result<String, ServerError> {
        self.boards
            .get(&board)
            .map(|b| b.firmware.installed_version().to_string())
            .ok_or(ServerError::BadHandle("unknown board"))
    }

    /// Attempts a compute-board firmware update. Anyone — including a
    /// tenant with full OS control — may call this; only images signed
    /// by the provider and not rolling the security version back will
    /// flash (§1).
    ///
    /// # Errors
    ///
    /// Fails on unknown boards, bad signatures, or rollbacks.
    pub fn update_board_firmware(
        &mut self,
        board: BoardId,
        image: FirmwareImage,
    ) -> Result<(), ServerError> {
        let board = self
            .boards
            .get_mut(&board)
            .ok_or(ServerError::BadHandle("unknown board"))?;
        board.firmware.update(image).map_err(ServerError::Firmware)
    }

    /// Powers a board on with `image` (§3.2's use scenario): assigns a
    /// MAC, builds the guest session, EFI-boots it over virtio-blk from
    /// cloud storage, and attaches it to the vSwitch.
    ///
    /// # Errors
    ///
    /// Fails on bad handles, occupied boards, or boot failure.
    pub fn power_on(
        &mut self,
        board_id: BoardId,
        image: &MachineImage,
        now: SimTime,
    ) -> Result<GuestId, ServerError> {
        let board = self
            .boards
            .get_mut(&board_id)
            .ok_or(ServerError::BadHandle("unknown board"))?;
        if board.guest.is_some() {
            return Err(ServerError::BadHandle("board already powered on"));
        }
        let guest_id = GuestId(self.next_guest);
        self.next_guest += 1;
        let mac = MacAddr::for_guest(guest_id.0 + 1);
        let mut session = BmGuestSession::new(self.profile, mac, 256, board.instance.limits());
        let boot = boot_guest(&mut session, &mut self.store, image, now)
            .map_err(ServerError::BootFailed)?;
        board.guest = Some(guest_id);
        let port = PortId(guest_id.0);
        self.vswitch.attach(mac, port);
        self.guests.insert(
            guest_id,
            Guest {
                board: board_id,
                session,
                port,
                boot,
            },
        );
        Ok(guest_id)
    }

    /// Powers a guest off, freeing its board and vSwitch port.
    ///
    /// # Errors
    ///
    /// Fails on unknown guests.
    pub fn power_off(&mut self, guest_id: GuestId) -> Result<(), ServerError> {
        let guest = self
            .guests
            .remove(&guest_id)
            .ok_or(ServerError::BadHandle("unknown guest"))?;
        self.vswitch.detach(guest.session.mac());
        if let Some(board) = self.boards.get_mut(&guest.board) {
            board.guest = None;
        }
        Ok(())
    }

    /// The guest's boot report.
    ///
    /// # Errors
    ///
    /// Fails on unknown guests.
    pub fn boot_report(&self, guest_id: GuestId) -> Result<BootReport, ServerError> {
        self.guests
            .get(&guest_id)
            .map(|g| g.boot)
            .ok_or(ServerError::BadHandle("unknown guest"))
    }

    /// The guest's MAC address.
    ///
    /// # Errors
    ///
    /// Fails on unknown guests.
    pub fn guest_mac(&self, guest_id: GuestId) -> Result<MacAddr, ServerError> {
        self.guests
            .get(&guest_id)
            .map(|g| g.session.mac())
            .ok_or(ServerError::BadHandle("unknown guest"))
    }

    /// Direct access to a guest's session (for workload drivers).
    ///
    /// # Errors
    ///
    /// Fails on unknown guests.
    pub fn guest_mut(&mut self, guest_id: GuestId) -> Result<&mut BmGuestSession, ServerError> {
        self.guests
            .get_mut(&guest_id)
            .map(|g| &mut g.session)
            .ok_or(ServerError::BadHandle("unknown guest"))
    }

    /// The shared cloud block store.
    pub fn store_mut(&mut self) -> &mut BlockStore {
        &mut self.store
    }

    /// Sends a packet from a guest into the cloud network. If the
    /// destination is a co-resident guest, the frame is delivered to it
    /// (the Fig. 9 local path: source board → bm-hypervisor → vSwitch →
    /// destination board, three PCIe traversals); otherwise it leaves on
    /// the uplink.
    ///
    /// # Errors
    ///
    /// Fails on unknown guests or ring errors.
    pub fn guest_send(
        &mut self,
        from: GuestId,
        dst: MacAddr,
        payload: &[u8],
        now: SimTime,
    ) -> Result<IoTiming, ServerError> {
        // The span wraps the whole board → vSwitch → board path, so
        // every session/vswitch span recorded inside nests under it.
        // On error the span closes at `now` rather than leaking open.
        let op = telemetry::begin("server", "guest_send", now);
        let result = self.guest_send_impl(from, dst, payload, now);
        telemetry::end(op, result.as_ref().map(|t| t.completed).unwrap_or(now));
        if result.is_ok() {
            telemetry::counter("server.guest_sends", 1);
        }
        result
    }

    fn guest_send_impl(
        &mut self,
        from: GuestId,
        dst: MacAddr,
        payload: &[u8],
        now: SimTime,
    ) -> Result<IoTiming, ServerError> {
        let sender = self
            .guests
            .get_mut(&from)
            .ok_or(ServerError::BadHandle("unknown guest"))?;
        let (egress, timing) = sender
            .session
            .net_send(dst, PacketKind::Udp, payload, now)
            .map_err(ServerError::Io)?;
        match self.vswitch.forward(&egress.packet, egress.at) {
            Forwarded::Local(port, at) => {
                // Find the destination guest by port.
                let dst_id = self
                    .guests
                    .iter()
                    .find(|(_, g)| g.port == port)
                    .map(|(id, _)| *id);
                if let Some(dst_id) = dst_id {
                    let receiver = self.guests.get_mut(&dst_id).expect("present");
                    let (_, rx_timing) = receiver
                        .session
                        .net_receive(&egress.payload, at)
                        .map_err(ServerError::Io)?;
                    return Ok(IoTiming {
                        submitted: timing.submitted,
                        completed: rx_timing.completed,
                    });
                }
                Ok(timing)
            }
            Forwarded::Uplink(_) | Forwarded::Dropped => Ok(timing),
        }
    }

    /// Issues a storage request from a guest against the cloud store.
    ///
    /// # Errors
    ///
    /// Fails on unknown guests or ring errors.
    pub fn guest_blk(
        &mut self,
        guest_id: GuestId,
        req: BlkRequestType,
        sector: u64,
        data: &[u8],
        read_len: u64,
        now: SimTime,
    ) -> Result<(BlkStatus, Vec<u8>, IoTiming), ServerError> {
        let op = telemetry::begin("server", "guest_blk", now);
        let result = (|| {
            let guest = self
                .guests
                .get_mut(&guest_id)
                .ok_or(ServerError::BadHandle("unknown guest"))?;
            guest
                .session
                .blk_request(&mut self.store, req, sector, data, read_len, now)
                .map_err(ServerError::Io)
        })();
        telemetry::end(
            op,
            result.as_ref().map(|(_, _, t)| t.completed).unwrap_or(now),
        );
        if result.is_ok() {
            telemetry::counter("server.guest_blks", 1);
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bmhive_cloud::catalog::INSTANCE_CATALOG;
    use bmhive_sim::SimDuration;

    fn e5() -> &'static InstanceType {
        &INSTANCE_CATALOG[0]
    }

    fn atom() -> &'static InstanceType {
        INSTANCE_CATALOG
            .iter()
            .find(|i| i.name.contains("atom"))
            .unwrap()
    }

    #[test]
    fn install_respects_all_constraints() {
        let mut server = BmHiveServer::new(ServerConstraints::production(), 1);
        let expected = ServerConstraints::production().max_boards(e5());
        for _ in 0..expected {
            server.install_board(e5()).unwrap();
        }
        assert!(matches!(
            server.install_board(e5()),
            Err(ServerError::ConstraintViolation(_))
        ));
        assert_eq!(server.board_count(), expected as usize);
    }

    #[test]
    fn sixteen_atom_boards_fit() {
        let mut server = BmHiveServer::new(ServerConstraints::production(), 2);
        for _ in 0..16 {
            server.install_board(atom()).unwrap();
        }
        assert_eq!(server.board_count(), 16);
        assert!(server.install_board(atom()).is_err());
    }

    #[test]
    fn full_lifecycle_boot_io_shutdown() {
        let mut server = BmHiveServer::new(ServerConstraints::production(), 3);
        let board = server.install_board(e5()).unwrap();
        let image = MachineImage::centos_evaluation(1);
        let guest = server.power_on(board, &image, SimTime::ZERO).unwrap();
        assert_eq!(server.guest_count(), 1);

        let boot = server.boot_report(guest).unwrap();
        assert_eq!(boot.sectors_read, image.boot_sectors());

        // Storage I/O works.
        let (status, data, _) = server
            .guest_blk(guest, BlkRequestType::In, 0, &[], 4096, boot.finished_at)
            .unwrap();
        assert_eq!(status, BlkStatus::Ok);
        assert_eq!(data.len(), 4096);

        // Network egress works (unknown destination → uplink).
        let timing = server
            .guest_send(guest, MacAddr::for_guest(200), b"egress", boot.finished_at)
            .unwrap();
        assert!(timing.latency() > SimDuration::ZERO);

        server.power_off(guest).unwrap();
        assert_eq!(server.guest_count(), 0);
        // The board is reusable.
        assert!(server
            .power_on(board, &image, SimTime::from_secs(10))
            .is_ok());
    }

    #[test]
    fn double_power_on_is_rejected() {
        let mut server = BmHiveServer::new(ServerConstraints::production(), 4);
        let board = server.install_board(e5()).unwrap();
        let image = MachineImage::centos_evaluation(1);
        server.power_on(board, &image, SimTime::ZERO).unwrap();
        assert!(matches!(
            server.power_on(board, &image, SimTime::ZERO),
            Err(ServerError::BadHandle(_))
        ));
    }

    #[test]
    fn local_guest_to_guest_delivery() {
        let mut server = BmHiveServer::new(ServerConstraints::production(), 5);
        let image = MachineImage::centos_evaluation(1);
        let b1 = server.install_board(e5()).unwrap();
        let b2 = server.install_board(e5()).unwrap();
        let g1 = server.power_on(b1, &image, SimTime::ZERO).unwrap();
        let g2 = server.power_on(b2, &image, SimTime::ZERO).unwrap();
        let dst = server.guest_mac(g2).unwrap();
        let start = SimTime::from_secs(1);
        let timing = server.guest_send(g1, dst, b"cross-board", start).unwrap();
        // The receiver really got it.
        let (_, rx, _) = server.guest_mut(g2).unwrap().counters();
        assert_eq!(rx, 1);
        // Three PCIe traversals: latency well above a single hop.
        assert!(timing.latency() > SimDuration::from_micros(3));
    }

    #[test]
    fn guests_are_isolated_per_board() {
        // Two tenants: I/O by one does not appear in the other's
        // counters (hardware isolation, Table 1).
        let mut server = BmHiveServer::new(ServerConstraints::production(), 6);
        let image = MachineImage::centos_evaluation(1);
        let b1 = server.install_board(e5()).unwrap();
        let b2 = server.install_board(e5()).unwrap();
        let g1 = server.power_on(b1, &image, SimTime::ZERO).unwrap();
        let g2 = server.power_on(b2, &image, SimTime::ZERO).unwrap();
        server
            .guest_blk(g1, BlkRequestType::In, 0, &[], 512, SimTime::from_secs(1))
            .unwrap();
        let (_, _, io1) = server.guest_mut(g1).unwrap().counters();
        let (_, _, io2) = server.guest_mut(g2).unwrap().counters();
        // Boot I/Os are equal; only g1 has the extra request.
        assert_eq!(io1, io2 + 1);
    }

    #[test]
    fn unknown_handles_error_cleanly() {
        let mut server = BmHiveServer::new(ServerConstraints::production(), 7);
        assert!(server.power_off(GuestId(9)).is_err());
        assert!(server.boot_report(GuestId(9)).is_err());
        assert!(server.guest_mac(GuestId(9)).is_err());
        assert!(server
            .power_on(
                BoardId(3),
                &MachineImage::centos_evaluation(1),
                SimTime::ZERO
            )
            .is_err());
    }
}

#[cfg(test)]
mod firmware_tests {
    use super::*;
    use bmhive_cloud::catalog::INSTANCE_CATALOG;
    use bmhive_cloud::firmware::{FirmwareError, FirmwareImage, SigningKey};

    #[test]
    fn boards_provision_with_signed_factory_firmware() {
        let mut server = BmHiveServer::new(ServerConstraints::production(), 8);
        let board = server.install_board(&INSTANCE_CATALOG[0]).unwrap();
        assert_eq!(
            server.board_firmware_version(board).unwrap(),
            "efi-virtio-1.0"
        );
    }

    #[test]
    fn provider_signed_update_flashes_tenant_forgery_does_not() {
        let mut server = BmHiveServer::new(ServerConstraints::production(), 8);
        let board = server.install_board(&INSTANCE_CATALOG[0]).unwrap();
        // Provider pushes a patched EFI.
        let key = server.signing_key();
        let update = FirmwareImage::signed(&key, "efi-virtio-1.1", 2, b"patched".to_vec());
        server.update_board_firmware(board, update).unwrap();
        assert_eq!(
            server.board_firmware_version(board).unwrap(),
            "efi-virtio-1.1"
        );
        // A tenant forges an implant with their own key.
        let tenant_key = SigningKey::new(0xdead);
        let implant = FirmwareImage::signed(&tenant_key, "efi-evil", 3, b"implant".to_vec());
        let err = server.update_board_firmware(board, implant).unwrap_err();
        assert!(matches!(
            err,
            ServerError::Firmware(FirmwareError::BadSignature)
        ));
        // A replayed old (signed) image is a rollback.
        let old = FirmwareImage::signed(
            &key,
            "efi-virtio-1.0",
            1,
            b"factory EFI with virtio-blk boot support".to_vec(),
        );
        let err = server.update_board_firmware(board, old).unwrap_err();
        assert!(matches!(
            err,
            ServerError::Firmware(FirmwareError::Rollback { .. })
        ));
        assert_eq!(
            server.board_firmware_version(board).unwrap(),
            "efi-virtio-1.1"
        );
    }
}
