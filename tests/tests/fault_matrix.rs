//! The fault matrix: every canned plan, end to end through the
//! `faults` bench experiment — injection fires, recovery completes,
//! and the run is deterministic in its seed. CI runs the same matrix
//! against the `repro` binary and byte-compares traced runs; this test
//! keeps the property enforced by `cargo test` alone.

use bmhive_faults as faults;

// The injector is thread-local and each test runs on its own thread,
// so arming in one test can never leak into another.

/// The whole experiment under one plan: rendered text (includes the
/// fault-stats block) plus the final stats.
fn run_plan(name: &str, seed: u64) -> (String, faults::FaultStats) {
    let plan = faults::canned(name).expect("canned plan");
    assert!(!plan.is_empty());
    faults::arm(plan, seed);
    let text = bmhive_bench::run_experiment("faults", seed).expect("faults experiment");
    let stats = faults::disarm().expect("was armed");
    (text, stats)
}

#[test]
fn every_canned_plan_injects_and_recovers() {
    for name in faults::CANNED_PLAN_NAMES {
        let (text, stats) = run_plan(name, 42);
        assert!(
            stats.injected_total() > 0,
            "{name}: plan armed but nothing injected"
        );
        assert!(
            stats.all_recovered(),
            "{name}: unrecovered faults\n{}",
            stats.to_text()
        );
        assert!(
            text.contains("recovered: yes"),
            "{name}: report must state recovery"
        );
    }
}

#[test]
fn every_canned_plan_is_deterministic_in_seed() {
    for name in faults::CANNED_PLAN_NAMES {
        let (a, sa) = run_plan(name, 7);
        let (b, sb) = run_plan(name, 7);
        assert_eq!(a, b, "{name}: rendered output diverged across runs");
        assert_eq!(
            sa.to_text(),
            sb.to_text(),
            "{name}: fault stats diverged across runs"
        );
    }
}

#[test]
fn plan_files_match_the_canned_plans() {
    // The checked-in plans/*.json are what `--faults` consumes from
    // disk; they must stay in sync with the compiled canned plans
    // (regenerate with `cargo run -p bmhive-faults --example dump_plans`).
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../plans");
    for name in faults::CANNED_PLAN_NAMES {
        let path = dir.join(format!("{name}.json"));
        let doc = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
        let parsed = faults::FaultPlan::from_json(&doc).expect("plan file parses");
        let canned = faults::canned(name).unwrap();
        assert_eq!(parsed.name, canned.name, "{name}: name drifted");
        assert_eq!(
            parsed.events(),
            canned.events(),
            "{name}: plan file drifted from the canned plan"
        );
        // And the serialisation round-trips byte-for-byte.
        assert_eq!(doc, canned.to_json(), "{name}: re-serialisation differs");
    }
}

#[test]
fn clean_run_reports_disarmed_engine() {
    // No plan armed: the experiment renders the clean baseline and
    // says so (the injector fast path must stay inert).
    assert!(!faults::is_armed());
    let text = bmhive_bench::run_experiment("faults", 42).expect("faults experiment");
    assert!(text.contains("none (clean baseline)"));
    assert!(text.contains("fault engine: disarmed"));
}
