//! The sharding contract: any `N`-way split of a sweep partitions the
//! canonical cell order disjointly and completely, and merging the
//! shard directories reassembles the serial run byte for byte.
//!
//! The matrix here is deliberately small (debug builds are slow); CI
//! additionally runs a 3-way shard of the *full* matrix through the
//! release `repro` binary and `cmp`s the merge against the serial run.

use bmhive_bench::merge::{self, MergeError, ShardManifest};
use bmhive_bench::sweep::{render_cell, run_sweep_shard, Shard, SweepSpec};
use std::collections::BTreeSet;
use std::path::PathBuf;

/// Two cheap experiments x two seeds x (clean + one plan), traced —
/// 8 cells, enough to make every shard of a 5-way split non-trivial.
fn reduced_matrix() -> SweepSpec {
    SweepSpec {
        experiments: vec!["table1".into(), "table2".into()],
        seeds: vec![1, 2],
        plans: vec![None, Some("link-flap".into())],
        trace: true,
        jobs: 2,
    }
}

/// A scratch directory unique to this test process and `label`.
fn scratch(label: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("bmhive-shard-merge-{}-{label}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn shard_counts_partition_the_full_matrix_disjointly_and_completely() {
    let spec = SweepSpec::full_matrix();
    let total = spec.cells().expect("full matrix").len();
    for n in [1usize, 2, 3, 5] {
        let mut seen = BTreeSet::new();
        for i in 0..n {
            let shard = Shard::new(i, n).expect("valid shard");
            for (index, _) in spec.shard_cells(shard).expect("shard cells") {
                assert!(
                    seen.insert(index),
                    "cell {index} owned by two shards of a {n}-way split"
                );
            }
        }
        assert_eq!(
            seen.len(),
            total,
            "a {n}-way split must cover all {total} cells"
        );
        assert_eq!(seen.last(), Some(&(total - 1)));
    }
}

#[test]
fn merged_shards_are_byte_identical_to_the_serial_run() {
    let spec = reduced_matrix();
    let mut serial_spec = spec.clone();
    serial_spec.jobs = 1;
    let serial = run_sweep_shard(&serial_spec, Shard::WHOLE).expect("serial sweep");
    let serial_stdout: String = serial.iter().map(|(_, out)| render_cell(out)).collect();

    const N: usize = 3;
    let root = scratch("roundtrip");
    let mut dirs = Vec::new();
    for i in 0..N {
        let shard = Shard::new(i, N).expect("valid shard");
        let outputs = run_sweep_shard(&spec, shard).expect("shard sweep");
        let dir = root.join(format!("shard-{i}"));
        merge::write_shard_dir(&dir, &spec, shard, &outputs).expect("write shard dir");
        dirs.push(dir);
    }

    let plan = merge::plan_merge(&dirs).expect("valid merge");
    assert_eq!(plan.cells.len(), serial.len());
    assert_eq!(
        plan.concat_reports().expect("readable cells"),
        serial_stdout,
        "merged stdout must equal the serial sweep's stdout"
    );

    // The combined directory must hold exactly the serial run's files
    // (reports + traces, no manifest), byte for byte.
    let combined = root.join("combined");
    plan.write_combined(&combined).expect("write combined");
    let mut names: Vec<String> = std::fs::read_dir(&combined)
        .expect("combined dir")
        .map(|e| e.expect("entry").file_name().into_string().expect("utf8"))
        .collect();
    names.sort();
    let mut expected: Vec<String> = serial
        .iter()
        .flat_map(|(_, out)| {
            let stem = out.cell.file_stem();
            [format!("{stem}.txt"), format!("{stem}.trace.json")]
        })
        .collect();
    expected.sort();
    assert_eq!(names, expected, "combined dir must mirror a serial --out");
    for (_, out) in &serial {
        let stem = out.cell.file_stem();
        let txt = std::fs::read_to_string(combined.join(format!("{stem}.txt"))).expect("txt");
        assert_eq!(txt, render_cell(out), "{stem}.txt differs");
        let trace =
            std::fs::read_to_string(combined.join(format!("{stem}.trace.json"))).expect("trace");
        assert_eq!(Some(trace), out.trace_json, "{stem}.trace.json differs");
    }
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn overlapping_shards_are_rejected() {
    let spec = reduced_matrix();
    let root = scratch("overlap");
    let shard = Shard::new(0, 2).expect("valid shard");
    let outputs = run_sweep_shard(&spec, shard).expect("shard sweep");
    let a = root.join("a");
    let b = root.join("b");
    merge::write_shard_dir(&a, &spec, shard, &outputs).expect("write a");
    merge::write_shard_dir(&b, &spec, shard, &outputs).expect("write b");
    match merge::plan_merge(&[a, b]) {
        Err(MergeError::Overlap { index: 0, .. }) => {}
        other => panic!("expected Overlap on cell 0, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn missing_shards_are_rejected() {
    let spec = reduced_matrix();
    let root = scratch("missing");
    let shard = Shard::new(1, 3).expect("valid shard");
    let outputs = run_sweep_shard(&spec, shard).expect("shard sweep");
    let dir = root.join("only");
    merge::write_shard_dir(&dir, &spec, shard, &outputs).expect("write shard");
    match merge::plan_merge(&[dir]) {
        Err(MergeError::Missing { count, first: 0 }) => {
            // A 1-of-3 shard of 8 cells owns indices {1, 4, 7}.
            assert_eq!(count, 5);
        }
        other => panic!("expected Missing starting at cell 0, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn shards_of_different_specs_do_not_merge() {
    let spec = reduced_matrix();
    let mut other_spec = spec.clone();
    other_spec.seeds = vec![7, 8];
    let root = scratch("mismatch");
    let shard0 = Shard::new(0, 2).expect("valid shard");
    let shard1 = Shard::new(1, 2).expect("valid shard");
    let a = root.join("a");
    let b = root.join("b");
    merge::write_shard_dir(
        &a,
        &spec,
        shard0,
        &run_sweep_shard(&spec, shard0).expect("sweep"),
    )
    .expect("write a");
    merge::write_shard_dir(
        &b,
        &other_spec,
        shard1,
        &run_sweep_shard(&other_spec, shard1).expect("sweep"),
    )
    .expect("write b");
    match merge::plan_merge(&[a, b]) {
        Err(MergeError::SpecMismatch(msg)) => {
            assert!(msg.contains("spec_hash"), "unexpected message: {msg}");
        }
        other => panic!("expected SpecMismatch, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn manifests_survive_a_disk_round_trip() {
    let spec = reduced_matrix();
    let root = scratch("manifest");
    let shard = Shard::new(2, 3).expect("valid shard");
    let outputs = run_sweep_shard(&spec, shard).expect("shard sweep");
    merge::write_shard_dir(&root, &spec, shard, &outputs).expect("write shard");
    let doc = std::fs::read_to_string(root.join(merge::MANIFEST_FILE)).expect("manifest on disk");
    let parsed = ShardManifest::from_json(&doc).expect("parseable manifest");
    assert_eq!(
        parsed,
        ShardManifest::for_shard(&spec, shard).expect("manifest")
    );
    assert_eq!(parsed.spec_hash, merge::spec_hash(&spec));
    let _ = std::fs::remove_dir_all(&root);
}
