//! The sweep engine's core contract: a parallel sweep is byte-for-byte
//! identical to the serial one — report text, fault stats, and chrome
//! traces — for every canned fault plan.
//!
//! The matrix here is deliberately small (debug builds are slow); CI
//! additionally byte-compares the *full* matrix through the release
//! `repro sweep` binary.

use bmhive_bench::sweep::{render_cell, run_sweep, SweepSpec};
use bmhive_faults::CANNED_PLAN_NAMES;

/// Two experiments x two seeds x (clean + every canned plan), traced.
/// `faults` drives a full bm-guest session (every fault site fires);
/// `table1` is a static render (the degenerate no-telemetry case).
fn reduced_matrix(jobs: usize) -> SweepSpec {
    let mut plans = vec![None];
    plans.extend(CANNED_PLAN_NAMES.iter().map(|n| Some((*n).to_string())));
    SweepSpec {
        experiments: vec!["table1".into(), "faults".into()],
        seeds: vec![1, 2],
        plans,
        trace: true,
        jobs,
    }
}

#[test]
fn parallel_sweep_is_byte_identical_to_serial() {
    let serial = run_sweep(&reduced_matrix(1)).expect("serial sweep");
    let parallel = run_sweep(&reduced_matrix(4)).expect("parallel sweep");
    assert_eq!(serial.len(), parallel.len());
    assert_eq!(serial.len(), 2 * 2 * (1 + CANNED_PLAN_NAMES.len()));
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(s.cell, p.cell, "cell order must not depend on --jobs");
        let label = s.cell.label();
        assert_eq!(s.report, p.report, "{label}: report differs");
        assert_eq!(s.fault_stats, p.fault_stats, "{label}: fault stats differ");
        assert_eq!(s.trace_json, p.trace_json, "{label}: chrome trace differs");
        // The CLI prints render_cell; equality there follows from the
        // fields, but check the composed form too.
        assert_eq!(render_cell(s), render_cell(p));
    }
}

#[test]
fn every_canned_plan_injects_and_recovers_in_the_sweep() {
    let outputs = run_sweep(&reduced_matrix(2)).expect("sweep");
    for plan in CANNED_PLAN_NAMES {
        let cell = outputs
            .iter()
            .find(|o| o.cell.experiment == "faults" && o.cell.plan.as_deref() == Some(plan))
            .expect("faults cell for every canned plan");
        let stats = cell.fault_stats.as_deref().expect("armed cell has stats");
        assert!(
            stats.contains("injected:"),
            "{plan}: no injections recorded:\n{stats}"
        );
        assert!(
            !cell.report.contains("recovered: NO"),
            "{plan}: unrecovered fault:\n{}",
            cell.report
        );
    }
}

#[test]
fn clean_cells_are_identical_across_plans_axis_only_when_unarmed() {
    // A clean cell must render exactly what a plain `repro` run of the
    // same experiment/seed renders — the sweep adds no side channel.
    let outputs = run_sweep(&reduced_matrix(2)).expect("sweep");
    for out in outputs.iter().filter(|o| o.cell.plan.is_none()) {
        let direct = bmhive_bench::run_experiment(&out.cell.experiment, out.cell.seed)
            .expect("known experiment");
        assert_eq!(out.report, direct, "{}", out.cell.label());
        assert!(out.fault_stats.is_none());
    }
}
