//! Failure injection: device resets mid-flight, backend death, staging
//! exhaustion, and recovery. The bm-hypervisor "manages the life cycle
//! of all its bm-guests" (§1) — which includes surviving their worst
//! days.

use bmhive_core::prelude::*;
use bmhive_iobond::IoBondDevice;
use bmhive_mem::{GuestAddr, GuestRam, SgSegment};
use bmhive_virtio::{DeviceType, Feature, Virtqueue, VirtqueueDriver};

#[test]
fn device_reset_clears_and_reactivates() {
    let mut board = GuestRam::new(1 << 20);
    let mut base = GuestRam::new(64 << 20);
    let mut dev = IoBondDevice::new(
        IoBondProfile::fpga(),
        DeviceType::Block,
        Feature::BlkFlush as u64,
        32,
        vec![0; 24],
    );
    let layout = QueueLayout::contiguous(GuestAddr::new(0x1000), 32);
    dev.function_mut().state_mut().driver_handshake(&[layout]);
    dev.activate(&mut base, GuestAddr::new(0x10_0000)).unwrap();
    assert!(dev.is_active());

    // Guest posts a chain, IO-Bond stages it...
    let mut driver = VirtqueueDriver::new(&mut board, layout).unwrap();
    board.write(GuestAddr::new(0x8000), b"inflight").unwrap();
    driver
        .add_buf(
            &mut board,
            &[SgSegment::new(GuestAddr::new(0x8000), 8)],
            &[],
        )
        .unwrap();
    dev.service(&mut board, &mut base, SimTime::ZERO).unwrap();
    assert_eq!(dev.shadow(0).unwrap().inflight_count(), 1);

    // ...then the guest resets the device (status write 0).
    dev.function_mut().state_mut().set_device_status(0);
    dev.deactivate();
    assert!(!dev.is_active());

    // Re-handshake and re-activate: a clean new epoch.
    dev.function_mut().state_mut().driver_handshake(&[layout]);
    dev.activate(&mut base, GuestAddr::new(0x200_0000)).unwrap();
    assert!(dev.is_active());
    assert_eq!(dev.shadow(0).unwrap().inflight_count(), 0);
}

#[test]
fn backend_failure_marks_device_needs_reset() {
    let mut dev = IoBondDevice::new(IoBondProfile::fpga(), DeviceType::Net, 0, 16, vec![0; 12]);
    // The per-guest bm-hypervisor process dies; the control plane flags
    // the device.
    dev.function_mut().mark_needs_reset_for_test();
}

// Extension trait so the test reads naturally; the real path is
// `state_mut().mark_needs_reset()` + config-change ISR.
trait NeedsResetExt {
    fn mark_needs_reset_for_test(&mut self);
}

impl NeedsResetExt for bmhive_virtio::VirtioPciFunction {
    fn mark_needs_reset_for_test(&mut self) {
        self.state_mut().mark_needs_reset();
        self.raise_config_isr();
        assert!(self.state().device_status() & bmhive_virtio::status::DEVICE_NEEDS_RESET != 0);
    }
}

#[test]
fn staging_exhaustion_backpressures_and_recovers() {
    // A tiny pool forces deferral; completions free slots; the deferred
    // chain then flows. No loss, no duplication.
    let mut board = GuestRam::new(1 << 20);
    let mut base = GuestRam::new(8 << 20);
    let guest_layout = QueueLayout::contiguous(GuestAddr::new(0x1000), 8);
    let shadow_layout = QueueLayout::contiguous(GuestAddr::new(0x1000), 8);
    let pool = bmhive_iobond::StagingPool::new(GuestAddr::new(0x40_0000), 2, 4096);
    let mut shadow = bmhive_iobond::ShadowQueue::new(
        IoBondProfile::fpga(),
        guest_layout,
        shadow_layout,
        pool,
        &mut base,
    )
    .unwrap();
    let mut driver = VirtqueueDriver::new(&mut board, guest_layout).unwrap();
    let mut backend = Virtqueue::new(shadow.shadow_layout());

    let mut completed = Vec::new();
    for round in 0..6u64 {
        board
            .write(
                GuestAddr::new(0x8000 + round * 0x100),
                format!("m{round}").as_bytes(),
            )
            .unwrap();
        driver
            .add_buf(
                &mut board,
                &[SgSegment::new(GuestAddr::new(0x8000 + round * 0x100), 2)],
                &[],
            )
            .unwrap();
        shadow
            .sync_to_shadow(&board, &mut base, SimTime::from_micros(round))
            .unwrap();
        // Backend drains whatever made it through.
        while let Some(chain) = backend.pop_avail(&base).unwrap() {
            let msg = chain.readable.gather(&base).unwrap();
            completed.push(String::from_utf8(msg).unwrap());
            backend.push_used(&mut base, chain.head, 0).unwrap();
        }
        shadow
            .sync_from_shadow(&mut board, &base, SimTime::from_micros(round))
            .unwrap();
        while driver.poll_used(&board).unwrap().is_some() {}
    }
    // Final drain of any deferred stragglers.
    for extra in 0..4u64 {
        shadow
            .sync_to_shadow(&board, &mut base, SimTime::from_micros(10 + extra))
            .unwrap();
        while let Some(chain) = backend.pop_avail(&base).unwrap() {
            let msg = chain.readable.gather(&base).unwrap();
            completed.push(String::from_utf8(msg).unwrap());
            backend.push_used(&mut base, chain.head, 0).unwrap();
        }
        shadow
            .sync_from_shadow(&mut board, &base, SimTime::from_micros(10 + extra))
            .unwrap();
        while driver.poll_used(&board).unwrap().is_some() {}
    }
    let expect: Vec<String> = (0..6).map(|i| format!("m{i}")).collect();
    assert_eq!(completed, expect, "every message exactly once, in order");
    assert_eq!(shadow.deferred_count(), 0);
    assert_eq!(shadow.inflight_count(), 0);
}

#[test]
fn image_without_drivers_fails_cleanly_everywhere() {
    let mut image = MachineImage::centos_evaluation(5);
    image.has_virtio_drivers = false;
    let mut store = BlockStore::new(StorageClass::CloudSsd, 5);
    let mut bm = BmGuestSession::new(
        IoBondProfile::fpga(),
        MacAddr::for_guest(1),
        64,
        InstanceLimits::production(),
    );
    let mut vm = VmGuestSession::new(MacAddr::for_guest(2), 64, InstanceLimits::production(), 5);
    assert!(boot_guest(&mut bm, &mut store, &image, SimTime::ZERO).is_err());
    assert!(boot_guest(&mut vm, &mut store, &image, SimTime::ZERO).is_err());
}
