//! Failure injection: device resets mid-flight, backend death, staging
//! exhaustion, and recovery. The bm-hypervisor "manages the life cycle
//! of all its bm-guests" (§1) — which includes surviving their worst
//! days.

use bmhive_core::prelude::*;
use bmhive_iobond::IoBondDevice;
use bmhive_mem::{GuestAddr, GuestRam, SgSegment};
use bmhive_virtio::{DeviceType, Feature, Virtqueue, VirtqueueDriver};

#[test]
fn device_reset_clears_and_reactivates() {
    let mut board = GuestRam::new(1 << 20);
    let mut base = GuestRam::new(64 << 20);
    let mut dev = IoBondDevice::new(
        IoBondProfile::fpga(),
        DeviceType::Block,
        Feature::BlkFlush as u64,
        32,
        vec![0; 24],
    );
    let layout = QueueLayout::contiguous(GuestAddr::new(0x1000), 32);
    dev.function_mut().state_mut().driver_handshake(&[layout]);
    dev.activate(&mut base, GuestAddr::new(0x10_0000)).unwrap();
    assert!(dev.is_active());

    // Guest posts a chain, IO-Bond stages it...
    let mut driver = VirtqueueDriver::new(&mut board, layout).unwrap();
    board.write(GuestAddr::new(0x8000), b"inflight").unwrap();
    driver
        .add_buf(
            &mut board,
            &[SgSegment::new(GuestAddr::new(0x8000), 8)],
            &[],
        )
        .unwrap();
    dev.service(&mut board, &mut base, SimTime::ZERO).unwrap();
    assert_eq!(dev.shadow(0).unwrap().inflight_count(), 1);

    // ...then the guest resets the device (status write 0).
    dev.function_mut().state_mut().set_device_status(0);
    dev.deactivate();
    assert!(!dev.is_active());

    // Re-handshake and re-activate: a clean new epoch.
    dev.function_mut().state_mut().driver_handshake(&[layout]);
    dev.activate(&mut base, GuestAddr::new(0x200_0000)).unwrap();
    assert!(dev.is_active());
    assert_eq!(dev.shadow(0).unwrap().inflight_count(), 0);
}

#[test]
fn backend_failure_marks_device_needs_reset() {
    // The per-guest bm-hypervisor process dies with one chain posted
    // but never completed; recovery must flag the device, re-handshake
    // a fresh epoch, and replay exactly that chain.
    let mut board = GuestRam::new(1 << 20);
    let mut base = GuestRam::new(64 << 20);
    let mut dev = IoBondDevice::new(IoBondProfile::fpga(), DeviceType::Net, 0, 16, vec![0; 12]);
    // A net function has an rx and a tx queue; both must be configured.
    let layout = QueueLayout::contiguous(GuestAddr::new(0x1000), 16);
    let tx_layout = QueueLayout::contiguous((layout.used + layout.footprint()).align_up(4096), 16);
    dev.function_mut()
        .state_mut()
        .driver_handshake(&[layout, tx_layout]);
    dev.activate(&mut base, GuestAddr::new(0x10_0000)).unwrap();

    let mut driver = VirtqueueDriver::new(&mut board, layout).unwrap();
    board.write(GuestAddr::new(0x8000), b"inflight").unwrap();
    let head = driver
        .add_buf(
            &mut board,
            &[SgSegment::new(GuestAddr::new(0x8000), 8)],
            &[],
        )
        .unwrap();
    dev.service(&mut board, &mut base, SimTime::ZERO).unwrap();
    let mut heads = Vec::new();
    dev.shadow(0).unwrap().inflight_guest_heads_into(&mut heads);
    assert_eq!(heads, vec![head]);

    // The backend process dies: the control plane latches needs-reset
    // and raises the config-change interrupt.
    assert!(!dev.needs_reset());
    dev.mark_backend_failed();
    assert!(dev.needs_reset());

    // Recovery: reset + re-handshake + rebuild at a fresh base region,
    // rewinding the guest cursors so the inflight chain replays.
    let report = dev
        .recover_from_backend_failure(&mut base, GuestAddr::new(0x200_0000))
        .unwrap();
    assert_eq!(report.replayed_chains, 1);
    assert!(!dev.needs_reset());
    assert!(dev.is_active());

    // The replacement backend drains the fresh shadow ring: it sees
    // the replayed chain exactly once, and the guest reaps exactly one
    // completion.
    dev.service(&mut board, &mut base, SimTime::from_micros(10))
        .unwrap();
    let mut backend = Virtqueue::new(dev.shadow(0).unwrap().shadow_layout());
    let chain = backend.pop_avail(&base).unwrap().expect("replayed chain");
    assert_eq!(chain.readable.gather(&base).unwrap(), b"inflight");
    backend.push_used(&mut base, chain.head, 0).unwrap();
    assert!(backend.pop_avail(&base).unwrap().is_none(), "exactly once");
    dev.service(&mut board, &mut base, SimTime::from_micros(20))
        .unwrap();
    let (reaped, _) = driver.poll_used(&board).unwrap().expect("completion");
    assert_eq!(reaped, head);
    assert!(driver.poll_used(&board).unwrap().is_none());
}

#[test]
fn staging_exhaustion_backpressures_and_recovers() {
    // A tiny pool forces deferral; completions free slots; the deferred
    // chain then flows. No loss, no duplication.
    let mut board = GuestRam::new(1 << 20);
    let mut base = GuestRam::new(8 << 20);
    let guest_layout = QueueLayout::contiguous(GuestAddr::new(0x1000), 8);
    let shadow_layout = QueueLayout::contiguous(GuestAddr::new(0x1000), 8);
    let pool = bmhive_iobond::StagingPool::new(GuestAddr::new(0x40_0000), 2, 4096);
    let mut shadow = bmhive_iobond::ShadowQueue::new(
        IoBondProfile::fpga(),
        guest_layout,
        shadow_layout,
        pool,
        &mut base,
    )
    .unwrap();
    let mut driver = VirtqueueDriver::new(&mut board, guest_layout).unwrap();
    let mut backend = Virtqueue::new(shadow.shadow_layout());

    let mut completed = Vec::new();
    let mut scratch = Vec::new();
    for round in 0..6u64 {
        board
            .write(
                GuestAddr::new(0x8000 + round * 0x100),
                format!("m{round}").as_bytes(),
            )
            .unwrap();
        driver
            .add_buf(
                &mut board,
                &[SgSegment::new(GuestAddr::new(0x8000 + round * 0x100), 2)],
                &[],
            )
            .unwrap();
        shadow
            .sync_to_shadow(&board, &mut base, SimTime::from_micros(round))
            .unwrap();
        // Backend drains whatever made it through.
        while let Some(chain) = backend.pop_avail(&base).unwrap() {
            let msg = chain.readable.gather(&base).unwrap();
            completed.push(String::from_utf8(msg).unwrap());
            backend.push_used(&mut base, chain.head, 0).unwrap();
        }
        shadow
            .sync_from_shadow(&mut board, &base, SimTime::from_micros(round), &mut scratch)
            .unwrap();
        while driver.poll_used(&board).unwrap().is_some() {}
    }
    // Final drain of any deferred stragglers.
    for extra in 0..4u64 {
        shadow
            .sync_to_shadow(&board, &mut base, SimTime::from_micros(10 + extra))
            .unwrap();
        while let Some(chain) = backend.pop_avail(&base).unwrap() {
            let msg = chain.readable.gather(&base).unwrap();
            completed.push(String::from_utf8(msg).unwrap());
            backend.push_used(&mut base, chain.head, 0).unwrap();
        }
        shadow
            .sync_from_shadow(
                &mut board,
                &base,
                SimTime::from_micros(10 + extra),
                &mut scratch,
            )
            .unwrap();
        while driver.poll_used(&board).unwrap().is_some() {}
    }
    let expect: Vec<String> = (0..6).map(|i| format!("m{i}")).collect();
    assert_eq!(completed, expect, "every message exactly once, in order");
    assert_eq!(shadow.deferred_count(), 0);
    assert_eq!(shadow.inflight_count(), 0);
}

#[test]
fn image_without_drivers_fails_cleanly_everywhere() {
    let mut image = MachineImage::centos_evaluation(5);
    image.has_virtio_drivers = false;
    let mut store = BlockStore::new(StorageClass::CloudSsd, 5);
    let mut bm = BmGuestSession::new(
        IoBondProfile::fpga(),
        MacAddr::for_guest(1),
        64,
        InstanceLimits::production(),
    );
    let mut vm = VmGuestSession::new(MacAddr::for_guest(2), 64, InstanceLimits::production(), 5);
    assert!(boot_guest(&mut bm, &mut store, &image, SimTime::ZERO).is_err());
    assert!(boot_guest(&mut vm, &mut store, &image, SimTime::ZERO).is_err());
}
