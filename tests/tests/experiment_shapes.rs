//! Acceptance tests: the paper's headline claims, asserted against the
//! full harness (`bmhive-bench`'s experiment functions). These are the
//! "does the reproduction reproduce" checks — if a refactor anywhere in
//! the stack bends a result out of the paper's shape, one of these
//! fails.

use bmhive_cloud::blockstore::IoKind;
use bmhive_workloads::env::GuestEnv;
use bmhive_workloads::{fio, mariadb, netperf, nginx, redis};

/// §4.4 headline: "it is 50% faster for NGINX than a similarly equipped
/// vm-guest".
#[test]
fn headline_nginx_50_percent() {
    let mut bm = GuestEnv::bm(100);
    let mut vm = GuestEnv::vm(100);
    let bm_run = nginx::run_nginx(&mut bm, &nginx::CLIENT_SWEEP);
    let vm_run = nginx::run_nginx(&mut vm, &nginx::CLIENT_SWEEP);
    let bm_sat = bm_run.rps.points().last().unwrap().1;
    let vm_sat = vm_run.rps.points().last().unwrap().1;
    assert!(
        bm_sat / vm_sat >= 1.45,
        "NGINX headline: bm/vm = {:.2}",
        bm_sat / vm_sat
    );
}

/// Fig. 13/14: the MariaDB ladder +14.7% / +42% / +55%.
#[test]
fn mariadb_ladder_matches() {
    let ratios: Vec<f64> = mariadb::QueryMix::ALL
        .iter()
        .map(|&mix| {
            let mut bm = GuestEnv::bm(101);
            let mut vm = GuestEnv::vm(101);
            mariadb::run_mariadb(&mut bm, mix).qps / mariadb::run_mariadb(&mut vm, mix).qps
        })
        .collect();
    let (ro, wo, rw) = (ratios[0], ratios[1], ratios[2]);
    assert!((1.08..=1.25).contains(&ro), "read-only {ro:.3}");
    assert!((1.30..=1.55).contains(&wo), "write-only {wo:.3}");
    assert!((1.40..=1.75).contains(&rw), "read/write {rw:.3}");
    assert!(ro < wo && wo < rw, "the ladder must ascend");
}

/// Fig. 9: both saturate >3.2M PPS; the bm unrestricted ceiling is ~16M.
#[test]
fn pps_claims_hold() {
    let mut bm = GuestEnv::bm(102);
    let mut vm = GuestEnv::vm(102);
    assert!(netperf::udp_pps(&mut bm, 10).stats.mean() > 3.2e6);
    assert!(netperf::udp_pps(&mut vm, 10).stats.mean() > 3.2e6);
    let mut bm2 = GuestEnv::bm(103);
    let unres = netperf::udp_pps_unrestricted(&mut bm2, 10).stats.mean();
    assert!((14e6..=18e6).contains(&unres), "unrestricted {unres:.3e}");
}

/// Fig. 11: the storage mean and tail gaps.
#[test]
fn storage_claims_hold() {
    let mut bm = GuestEnv::bm(104);
    let mut vm = GuestEnv::vm(104);
    let bm_run = fio::fio_cloud(&mut bm, IoKind::Read, 50_000);
    let vm_run = fio::fio_cloud(&mut vm, IoKind::Read, 50_000);
    let mean_ratio = vm_run.latency_us.mean() / bm_run.latency_us.mean();
    let tail_ratio = vm_run.latency_us.percentile(99.9) / bm_run.latency_us.percentile(99.9);
    assert!(
        (1.15..=1.45).contains(&mean_ratio),
        "mean ratio {mean_ratio:.2}"
    );
    assert!(
        (2.0..=5.0).contains(&tail_ratio),
        "p99.9 ratio {tail_ratio:.2}"
    );
}

/// Fig. 15: Redis in the 20–40% band across the sweep.
#[test]
fn redis_band_holds() {
    let mut bm = GuestEnv::bm(105);
    let mut vm = GuestEnv::vm(105);
    let bm_s = redis::run_redis_clients(&mut bm, &redis::CLIENT_SWEEP, 64);
    let vm_s = redis::run_redis_clients(&mut vm, &redis::CLIENT_SWEEP, 64);
    for (b, v) in bm_s.points().iter().zip(vm_s.points()) {
        let ratio = b.1 / v.1;
        assert!(
            (1.15..=1.50).contains(&ratio),
            "clients {}: {ratio:.2}",
            b.0
        );
    }
}

/// The whole harness renders deterministically: two runs with one seed
/// are byte-identical, across every experiment.
#[test]
fn full_harness_is_deterministic() {
    let a = bmhive_bench_like_render(42);
    let b = bmhive_bench_like_render(42);
    assert_eq!(a, b);
}

fn bmhive_bench_like_render(seed: u64) -> String {
    // A cheap subset of the bench harness (the full one lives in
    // bmhive-bench; integration tests avoid the dev-dependency cycle).
    let mut bm = GuestEnv::bm(seed);
    let mut vm = GuestEnv::vm(seed);
    format!(
        "{:?}|{:?}|{:?}",
        netperf::udp_pps(&mut bm, 5).stats.mean(),
        fio::fio_cloud(&mut vm, IoKind::Read, 2_000)
            .latency_us
            .mean(),
        redis::run_redis_clients(&mut GuestEnv::bm(seed), &[1000], 64).points(),
    )
}
