//! Batch-vs-single equivalence, pinned end to end: a traffic cell
//! driven by the `BatchRunner` (whole-tick drains through a reused
//! scratch) must produce byte-identical reports and traces to the same
//! cell driven one `pop()` at a time — across seeds, dispatch modes,
//! an outage, and every canned fault plan.
//!
//! This is the property that makes the tick-batched hot path safe to
//! ship: batching is a *driver* optimization, invisible to the
//! simulation. The only sanctioned trace difference is the pair of
//! `sim.batch_*` meter counters that describe the batched driver
//! itself, which the comparison strips.

use bmhive_faults as faults;
use bmhive_sim::{SimDuration, SimTime};
use bmhive_telemetry as telemetry;
use bmhive_traffic::{
    run, run_single_pop, ArrivalModel, DispatchMode, Outage, Policy, RunReport, TrafficConfig,
};
use bmhive_workloads::openloop::ServiceTime;

/// Everything one traced run produced, rendered to comparable strings:
/// the full report (Debug includes every histogram bucket), the span
/// trace, and the metrics registry minus the batch-driver meters.
struct Observed {
    report: String,
    spans: String,
    registry: String,
}

fn observe(f: impl FnOnce() -> RunReport) -> Observed {
    telemetry::set_enabled(true);
    telemetry::reset();
    let report = f();
    let snap = telemetry::snapshot();
    telemetry::set_enabled(false);
    telemetry::reset();
    let registry = snap
        .registry
        .to_text()
        .lines()
        .filter(|line| !line.contains("sim.batch_"))
        .collect::<Vec<_>>()
        .join("\n");
    Observed {
        report: format!("{report:?}"),
        spans: telemetry::export::jsonl(&snap.events),
        registry,
    }
}

fn configs() -> Vec<TrafficConfig> {
    vec![
        TrafficConfig {
            guests: 4,
            pmd_cores: 2,
            service: ServiceTime::web_tier(),
            arrivals: ArrivalModel::Poisson { rate_rps: 8_000.0 },
            requests: 2_000,
            net_hop: SimDuration::from_micros(2),
            mode: DispatchMode::Single(Policy::RoundRobin),
            outage: Some(Outage {
                guest: 1,
                at: SimTime::from_micros(20_000),
                lasts: SimDuration::from_micros(30_000),
            }),
        },
        TrafficConfig {
            guests: 4,
            pmd_cores: 2,
            service: ServiceTime::web_tier(),
            arrivals: ArrivalModel::Poisson { rate_rps: 8_000.0 },
            requests: 2_000,
            net_hop: SimDuration::from_micros(2),
            mode: DispatchMode::Hedge {
                policy: Policy::PowerOfTwo,
                delay: SimDuration::from_micros(400),
            },
            outage: None,
        },
    ]
}

#[test]
fn batched_and_single_pop_runs_are_byte_identical() {
    // Clean plus every canned fault plan, four seeds each.
    let plans: Vec<Option<&str>> = std::iter::once(None)
        .chain(faults::CANNED_PLAN_NAMES.iter().copied().map(Some))
        .collect();
    for cfg in &configs() {
        for &plan in &plans {
            for seed in [1u64, 7, 42, 9001] {
                let arm = |mode: &str| {
                    if let Some(name) = plan {
                        faults::arm(faults::canned(name).expect("canned plan"), seed);
                        let _ = mode;
                    }
                };
                arm("batched");
                let batched = observe(|| run(cfg, seed));
                if plan.is_some() {
                    faults::disarm();
                }
                arm("single");
                let single = observe(|| run_single_pop(cfg, seed));
                if plan.is_some() {
                    faults::disarm();
                }

                let label = format!("cfg {:?} plan {plan:?} seed {seed}", cfg.mode);
                assert_eq!(batched.report, single.report, "report diverged: {label}");
                assert_eq!(batched.spans, single.spans, "spans diverged: {label}");
                assert_eq!(
                    batched.registry, single.registry,
                    "registry diverged: {label}"
                );
            }
        }
    }
}

#[test]
fn batched_run_emits_the_batch_meters_single_pop_does_not() {
    let cfg = &configs()[0];
    telemetry::set_enabled(true);
    telemetry::reset();
    let _ = run(cfg, 1);
    let snap = telemetry::snapshot();
    assert!(snap.registry.counter("sim.batch_ticks") > 0);
    assert!(snap.registry.counter("sim.batch_events") > 0);
    telemetry::reset();
    let _ = run_single_pop(cfg, 1);
    let snap = telemetry::snapshot();
    telemetry::set_enabled(false);
    telemetry::reset();
    assert_eq!(snap.registry.counter("sim.batch_ticks"), 0);
    assert_eq!(snap.registry.counter("sim.batch_events"), 0);
}
