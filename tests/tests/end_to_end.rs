//! End-to-end: a full BM-Hive server hosting the maximum tenant count,
//! every guest booting from the same image and doing real I/O.

use bmhive_core::prelude::*;

#[test]
fn sixteen_tenants_boot_and_do_io_on_one_server() {
    let mut server = BmHiveServer::new(ServerConstraints::production(), 1);
    let image = MachineImage::centos_evaluation(1);
    let atom = INSTANCE_CATALOG
        .iter()
        .find(|i| i.name.contains("atom"))
        .expect("atom instance");

    // Fill the chassis.
    let mut guests = Vec::new();
    while let Ok(board) = server.install_board(atom) {
        let guest = server
            .power_on(board, &image, SimTime::ZERO)
            .expect("boots");
        guests.push(guest);
    }
    assert_eq!(guests.len(), 16, "the abstract's 16-guest density");

    // Every tenant reads its disk and sends a packet.
    for (i, &guest) in guests.iter().enumerate() {
        let t = SimTime::from_secs(1 + i as u64);
        let (status, data, _) = server
            .guest_blk(guest, BlkRequestType::In, 4096, &[], 4096, t)
            .expect("read");
        assert_eq!(status, BlkStatus::Ok);
        assert_eq!(data.len(), 4096);
        server
            .guest_send(guest, MacAddr::for_guest(100), b"uplink", t)
            .expect("send");
    }

    // All tenants accounted for; power two off and reuse their boards.
    assert_eq!(server.guest_count(), 16);
    server.power_off(guests[0]).unwrap();
    server.power_off(guests[15]).unwrap();
    assert_eq!(server.guest_count(), 14);
}

#[test]
fn guest_to_guest_traffic_crosses_the_vswitch_only() {
    let mut server = BmHiveServer::new(ServerConstraints::production(), 2);
    let image = MachineImage::centos_evaluation(1);
    let e5 = &INSTANCE_CATALOG[0];
    let b1 = server.install_board(e5).unwrap();
    let b2 = server.install_board(e5).unwrap();
    let g1 = server.power_on(b1, &image, SimTime::ZERO).unwrap();
    let g2 = server.power_on(b2, &image, SimTime::ZERO).unwrap();

    let dst = server.guest_mac(g2).unwrap();
    let mut last = SimTime::from_secs(1);
    for i in 0..50u64 {
        let timing = server
            .guest_send(g1, dst, format!("frame {i}").as_bytes(), last)
            .expect("delivery");
        assert!(timing.completed > timing.submitted);
        last = timing.completed;
    }
    let (tx1, rx1, _) = {
        let s = server.guest_mut(g1).unwrap();
        s.counters()
    };
    let (tx2, rx2, _) = {
        let s = server.guest_mut(g2).unwrap();
        s.counters()
    };
    assert_eq!(tx1, 50);
    assert_eq!(rx2, 50);
    assert_eq!(rx1, 0, "sender received nothing");
    assert_eq!(tx2, 0, "receiver sent nothing");
}

#[test]
fn boot_reads_exactly_the_image_payload_on_every_platform() {
    let image = MachineImage::centos_evaluation(9);
    // bm-guest via the server.
    let mut server = BmHiveServer::new(ServerConstraints::production(), 3);
    let board = server.install_board(&INSTANCE_CATALOG[0]).unwrap();
    let guest = server.power_on(board, &image, SimTime::ZERO).unwrap();
    let bm_boot = server.boot_report(guest).unwrap();
    // vm-guest standalone.
    let mut store = BlockStore::new(StorageClass::CloudSsd, 3);
    let mut vm = VmGuestSession::new(MacAddr::for_guest(7), 128, InstanceLimits::production(), 3);
    let vm_boot = boot_guest(&mut vm, &mut store, &image, SimTime::ZERO).unwrap();

    assert_eq!(bm_boot.sectors_read, image.boot_sectors());
    assert_eq!(vm_boot.sectors_read, image.boot_sectors());
    assert_eq!(
        bm_boot.requests, vm_boot.requests,
        "identical request pattern"
    );
}

#[test]
fn rate_limits_bind_identically_for_all_tenants() {
    let mut server = BmHiveServer::new(ServerConstraints::production(), 4);
    let image = MachineImage::centos_evaluation(1);
    let e5 = &INSTANCE_CATALOG[0];
    let b1 = server.install_board(e5).unwrap();
    let g1 = server.power_on(b1, &image, SimTime::ZERO).unwrap();

    // Hammer storage from one guest: its own 25K IOPS limiter paces it
    // (after the initial burst allowance amortises away).
    let mut t = SimTime::from_secs(1);
    let n = 3_000;
    let start = t;
    for i in 0..n {
        let (_, _, timing) = server
            .guest_blk(g1, BlkRequestType::In, i * 8, &[], 4096, t)
            .expect("read");
        t = timing.submitted + SimDuration::from_micros(10);
        if i == n - 1 {
            t = timing.completed;
        }
    }
    let elapsed = t.saturating_duration_since(start);
    let iops = n as f64 / elapsed.as_secs_f64();
    assert!(iops < 28_500.0, "one tenant cannot exceed its cap: {iops}");
}
