//! Integration coverage for the open-loop traffic front-end.
//!
//! Two contracts are pinned here: the `traffic_policies` experiment is
//! byte-identical under a parallel sweep (the new crate introduces no
//! hidden global state), and both traffic experiments pass their own
//! printed gates — the cloning closed-form check and the
//! neighbour-isolation / hedge-tail checks.

use bmhive_bench::sweep::{render_cell, run_sweep, SweepSpec};
use bmhive_traffic::{run, ArrivalModel, DispatchMode, Policy, TrafficConfig};
use bmhive_workloads::openloop::ServiceTime;

fn traffic_matrix(jobs: usize) -> SweepSpec {
    SweepSpec {
        experiments: vec!["traffic_policies".into()],
        seeds: vec![1, 2],
        plans: vec![None, Some("board-loss".into())],
        trace: true,
        jobs,
    }
}

#[test]
fn traffic_policies_sweep_is_byte_identical_across_jobs() {
    let serial = run_sweep(&traffic_matrix(1)).expect("serial sweep");
    let parallel = run_sweep(&traffic_matrix(4)).expect("parallel sweep");
    assert_eq!(serial.len(), parallel.len());
    assert_eq!(serial.len(), 2 * 2);
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(s.cell, p.cell, "cell order must not depend on --jobs");
        let label = s.cell.label();
        assert_eq!(s.report, p.report, "{label}: report differs");
        assert_eq!(s.fault_stats, p.fault_stats, "{label}: fault stats differ");
        assert_eq!(s.trace_json, p.trace_json, "{label}: chrome trace differs");
        assert_eq!(render_cell(s), render_cell(p));
    }
}

#[test]
fn traffic_experiments_pass_their_printed_gates() {
    for (name, report) in [
        ("traffic_policies", bmhive_bench::traffic_policies(1)),
        ("traffic_isolation", bmhive_bench::traffic_isolation(1)),
    ] {
        assert!(
            report.contains("-> PASS"),
            "{name}: no passing gate rendered:\n{report}"
        );
        assert!(
            !report.contains("-> FAIL"),
            "{name}: a gate failed:\n{report}"
        );
    }
}

#[test]
fn traffic_engine_is_reachable_without_the_bench_harness() {
    // A direct engine run through the public API: small, hedged, and
    // fully drained — the books must balance without bench glue.
    let cfg = TrafficConfig {
        guests: 4,
        pmd_cores: 2,
        service: ServiceTime::web_tier(),
        arrivals: ArrivalModel::Poisson { rate_rps: 8_000.0 },
        requests: 500,
        net_hop: bmhive_sim::SimDuration::from_micros(2),
        mode: DispatchMode::Hedge {
            policy: Policy::PowerOfTwo,
            delay: ServiceTime::web_tier().p95(),
        },
        outage: None,
    };
    let report = run(&cfg, 9);
    assert_eq!(report.offered, 500);
    assert_eq!(report.completed + report.dropped, 500);
    assert_eq!(report.residual_depth, 0, "unbalanced vswitch completions");
    assert_eq!(report.cancelled, report.clones_sent);
}
