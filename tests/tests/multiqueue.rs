//! Multiqueue virtio-net through IO-Bond: a 4-pair device bridges eight
//! independent shadow vrings, and traffic on one pair never perturbs
//! another — the configuration behind the 4 M PPS instances.

use bmhive_core::prelude::*;
use bmhive_iobond::IoBondDevice;
use bmhive_mem::{GuestAddr, GuestRam, SgSegment};
use bmhive_virtio::{DeviceType, Feature, NetConfig, VirtqueueDriver};

const PAIRS: u16 = 4;

struct Rig {
    board: GuestRam,
    base: GuestRam,
    dev: IoBondDevice,
    /// One driver per queue: [rx0, tx0, rx1, tx1, ...].
    drivers: Vec<VirtqueueDriver>,
    backends: Vec<Virtqueue>,
}

fn rig() -> Rig {
    let mut board = GuestRam::new(1 << 22);
    let mut base = GuestRam::new(256 << 20);
    let mut cfg = NetConfig::with_mac([2, 0, 0, 0, 0, 1]);
    cfg.max_virtqueue_pairs = PAIRS;
    let mut dev = IoBondDevice::with_queue_count(
        IoBondProfile::fpga(),
        DeviceType::Net,
        Feature::NetMac as u64,
        64,
        PAIRS * 2,
        cfg.to_bytes().to_vec(),
    );
    // Program all 8 queues and handshake.
    let layouts: Vec<QueueLayout> = (0..PAIRS * 2)
        .map(|q| QueueLayout::contiguous(GuestAddr::new(0x10_000 + u64::from(q) * 0x4_000), 64))
        .collect();
    dev.function_mut().state_mut().driver_handshake(&layouts);
    dev.activate(&mut base, GuestAddr::new(0x10_0000)).unwrap();
    let drivers = layouts
        .iter()
        .map(|l| VirtqueueDriver::new(&mut board, *l).unwrap())
        .collect();
    let backends = (0..PAIRS * 2)
        .map(|q| Virtqueue::new(dev.shadow(usize::from(q)).unwrap().shadow_layout()))
        .collect();
    Rig {
        board,
        base,
        dev,
        drivers,
        backends,
    }
}

#[test]
fn all_eight_queues_activate() {
    let r = rig();
    assert!(r.dev.is_active());
    for q in 0..usize::from(PAIRS * 2) {
        assert!(r.dev.shadow(q).is_some(), "queue {q}");
    }
    assert!(r.dev.shadow(usize::from(PAIRS * 2)).is_none());
}

#[test]
fn queues_carry_independent_traffic() {
    let mut r = rig();
    // Post a distinct payload on every TX queue (odd indices).
    for pair in 0..u64::from(PAIRS) {
        let q = (pair * 2 + 1) as usize;
        let addr = GuestAddr::new(0x100_000 + pair * 0x1000);
        let payload = format!("pair-{pair}");
        r.board.write(addr, payload.as_bytes()).unwrap();
        r.drivers[q]
            .add_buf(
                &mut r.board,
                &[SgSegment::new(addr, payload.len() as u32)],
                &[],
            )
            .unwrap();
    }
    r.dev
        .service(&mut r.board, &mut r.base, SimTime::ZERO)
        .unwrap();

    // Each backend sees exactly its own pair's frame.
    for pair in 0..u64::from(PAIRS) {
        let q = (pair * 2 + 1) as usize;
        let chain = r.backends[q].pop_avail(&r.base).unwrap().expect("frame");
        assert_eq!(
            chain.readable.gather(&r.base).unwrap(),
            format!("pair-{pair}").as_bytes()
        );
        assert_eq!(r.backends[q].pop_avail(&r.base).unwrap(), None, "only one");
        r.backends[q].push_used(&mut r.base, chain.head, 0).unwrap();
        // RX queues saw nothing.
        let rx = (pair * 2) as usize;
        assert_eq!(r.backends[rx].pop_avail(&r.base).unwrap(), None);
    }

    // Completions route back to the right drivers.
    r.dev
        .service(&mut r.board, &mut r.base, SimTime::from_micros(10))
        .unwrap();
    for pair in 0..u64::from(PAIRS) {
        let q = (pair * 2 + 1) as usize;
        assert!(
            r.drivers[q].poll_used(&r.board).unwrap().is_some(),
            "pair {pair}"
        );
    }
}

#[test]
fn head_registers_are_per_queue() {
    let mut r = rig();
    // Three frames on tx0, one on tx3.
    for i in 0..3u64 {
        let addr = GuestAddr::new(0x100_000 + i * 256);
        r.board.write(addr, b"x").unwrap();
        r.drivers[1]
            .add_buf(&mut r.board, &[SgSegment::new(addr, 1)], &[])
            .unwrap();
    }
    r.board.write(GuestAddr::new(0x140_000), b"y").unwrap();
    r.drivers[7]
        .add_buf(
            &mut r.board,
            &[SgSegment::new(GuestAddr::new(0x140_000), 1)],
            &[],
        )
        .unwrap();
    r.dev
        .service(&mut r.board, &mut r.base, SimTime::ZERO)
        .unwrap();
    assert_eq!(r.dev.shadow(1).unwrap().head_reg(), 3);
    assert_eq!(r.dev.shadow(7).unwrap().head_reg(), 1);
    for q in [0usize, 2, 3, 4, 5, 6] {
        assert_eq!(r.dev.shadow(q).unwrap().head_reg(), 0, "queue {q}");
    }
}
