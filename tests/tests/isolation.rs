//! Isolation and adversarial-guest tests: the security claims of
//! Table 1, exercised against the functional machinery.
//!
//! A bm-guest is "less constrained and thus more powerful than
//! vm-guests" (§3.1): it controls every byte of its board RAM, including
//! its virtqueues. These tests feed the backend hostile ring state and
//! verify the bm-hypervisor side survives with typed errors, never
//! panics, and never lets one tenant disturb another.

use bmhive_core::prelude::*;
use bmhive_mem::{GuestAddr, GuestRam};
use bmhive_virtio::VirtioError;

#[test]
fn forged_ring_state_yields_errors_not_panics() {
    // Drive a raw shadow pairing with garbage in the guest ring.
    let mut board = GuestRam::new(1 << 20);
    let mut base = GuestRam::new(4 << 20);
    let layout = QueueLayout::contiguous(GuestAddr::new(0x1000), 16);
    let shadow_layout = QueueLayout::contiguous(GuestAddr::new(0x1000), 16);
    let pool = bmhive_iobond::StagingPool::new(GuestAddr::new(0x100_000), 64, 4096);
    let mut shadow = bmhive_iobond::ShadowQueue::new(
        IoBondProfile::fpga(),
        layout,
        shadow_layout,
        pool,
        &mut base,
    )
    .unwrap();

    // Malicious avail entries: out-of-range heads, looping chains,
    // enormous lengths.
    board
        .write_u16(GuestAddr::new(0x1000 + 16 * 16 + 4), 999)
        .unwrap(); // avail[0] head
    board
        .write_u16(GuestAddr::new(0x1000 + 16 * 16 + 2), 1)
        .unwrap(); // avail idx
    let err = shadow
        .sync_to_shadow(&board, &mut base, SimTime::ZERO)
        .unwrap_err();
    assert!(matches!(err, VirtioError::BadHeadIndex(_)));

    // Self-loop.
    board.write_u64(GuestAddr::new(0x1000), 0x5000).unwrap();
    board.write_u32(GuestAddr::new(0x1000 + 8), 64).unwrap();
    board.write_u16(GuestAddr::new(0x1000 + 12), 1).unwrap(); // NEXT
    board.write_u16(GuestAddr::new(0x1000 + 14), 0).unwrap(); // -> itself
    board
        .write_u16(GuestAddr::new(0x1000 + 16 * 16 + 4), 0)
        .unwrap();
    board
        .write_u16(GuestAddr::new(0x1000 + 16 * 16 + 2), 2)
        .unwrap();
    let err = shadow
        .sync_to_shadow(&board, &mut base, SimTime::ZERO)
        .unwrap_err();
    assert_eq!(err, VirtioError::ChainTooLong);

    // The pairing still works for an honest chain afterwards.
    assert_eq!(shadow.deferred_count(), 0);
}

#[test]
fn hostile_tenant_cannot_disturb_a_neighbour() {
    let mut server = BmHiveServer::new(ServerConstraints::production(), 10);
    let image = MachineImage::centos_evaluation(1);
    let e5 = &INSTANCE_CATALOG[0];
    let attacker_board = server.install_board(e5).unwrap();
    let victim_board = server.install_board(e5).unwrap();
    let attacker = server
        .power_on(attacker_board, &image, SimTime::ZERO)
        .unwrap();
    let victim = server
        .power_on(victim_board, &image, SimTime::ZERO)
        .unwrap();

    // The attacker runs storage flat-out at its cap (25 K IOPS = one op
    // per 40 µs) while the victim issues occasional reads, interleaved
    // in time order.
    let mut t = SimTime::from_secs(1);
    let mut victim_worst = SimDuration::ZERO;
    for i in 0..500u64 {
        let (_, _, timing) = server
            .guest_blk(attacker, BlkRequestType::In, i, &[], 4096, t)
            .unwrap();
        t = timing.submitted + SimDuration::from_micros(40);
        if i % 50 == 0 {
            // The victim's own I/O still completes promptly: the
            // attacker's cap leaves the striped store far from
            // saturated, and each tenant's limiter is its own.
            let (status, _, vt) = server
                .guest_blk(victim, BlkRequestType::In, i, &[], 4096, t)
                .unwrap();
            assert_eq!(status, BlkStatus::Ok);
            victim_worst = victim_worst.max(vt.latency());
            t = t.max(vt.submitted + SimDuration::from_micros(40));
        }
    }
    assert!(
        victim_worst < SimDuration::from_millis(5),
        "victim worst latency {victim_worst} under attack"
    );
}

#[test]
fn guest_memory_is_never_shared_between_tenants() {
    // Two sessions write the same guest-physical address; each sees only
    // its own bytes (dedicated board RAM, not EPT tricks).
    let mut a = BmGuestSession::new(
        IoBondProfile::fpga(),
        MacAddr::for_guest(1),
        64,
        InstanceLimits::unrestricted(),
    );
    let mut b = BmGuestSession::new(
        IoBondProfile::fpga(),
        MacAddr::for_guest(2),
        64,
        InstanceLimits::unrestricted(),
    );
    let (pkt_a, _) = a
        .net_send(
            MacAddr::for_guest(2),
            PacketKind::Udp,
            b"tenant-a-secret",
            SimTime::ZERO,
        )
        .unwrap();
    let (pkt_b, _) = b
        .net_send(
            MacAddr::for_guest(1),
            PacketKind::Udp,
            b"tenant-b-data",
            SimTime::ZERO,
        )
        .unwrap();
    assert_eq!(pkt_a.payload, b"tenant-a-secret");
    assert_eq!(pkt_b.payload, b"tenant-b-data");
}

#[test]
fn service_profiles_encode_the_table1_claims() {
    let vm = ServiceProfile::of(ServiceKind::VmBased);
    let st = ServiceProfile::of(ServiceKind::SingleTenantBareMetal);
    let bm = ServiceProfile::of(ServiceKind::BmHive);
    // Side channels: only the shared-microarchitecture service.
    assert!(vm.side_channel_exposed());
    assert!(!st.side_channel_exposed() && !bm.side_channel_exposed());
    // Firmware: only the single-tenant service hands it to the tenant.
    assert!(st.provider_exposed_to_tenant());
    assert!(!bm.provider_exposed_to_tenant());
    // Cloud integration: the single-tenant box is the odd one out.
    assert!(vm.cloud_integrated() && bm.cloud_integrated());
    assert!(!st.cloud_integrated());
}

#[test]
fn unsupported_requests_are_contained() {
    // A guest issuing garbage virtio-blk request types gets a status
    // byte back, not a wedged queue.
    let mut session = BmGuestSession::new(
        IoBondProfile::fpga(),
        MacAddr::for_guest(1),
        64,
        InstanceLimits::unrestricted(),
    );
    let mut store = BlockStore::new(StorageClass::CloudSsd, 5);
    for raw in [3u32, 5, 7, 100] {
        let (status, _, _) = session
            .blk_request(
                &mut store,
                BlkRequestType::Unsupported(raw),
                0,
                &[],
                0,
                SimTime::ZERO,
            )
            .unwrap();
        assert_eq!(status, BlkStatus::Unsupported);
    }
    // Queue still serves honest requests.
    let (status, data, _) = session
        .blk_request(&mut store, BlkRequestType::In, 0, &[], 512, SimTime::ZERO)
        .unwrap();
    assert_eq!(status, BlkStatus::Ok);
    assert_eq!(data.len(), 512);
}
