//! Operational-lifecycle integration: the control plane, signed
//! firmware, live upgrade, and the migration prototype working against
//! one server — the §3.2 "seamlessly integrated into the existing cloud
//! infrastructure" story end to end.

use bmhive_cloud::firmware::{FirmwareError, FirmwareImage, SigningKey};
use bmhive_cloud::image::ImageService;
use bmhive_core::prelude::*;
use bmhive_hypervisor::migrate::{convert_to_vm, GuestOs, MigrationPolicy};
use bmhive_sim::SimTime;

#[test]
fn control_plane_runs_a_tenant_day() {
    let server = BmHiveServer::new(ServerConstraints::production(), 50);
    let mut images = ImageService::new();
    let image = images.register(MachineImage::centos_evaluation(1));
    let mut plane = ControlPlane::new(server, images, 2);

    // Morning: two tenants arrive.
    let mut guests = Vec::new();
    for i in 0..2 {
        let response = plane.handle(
            ControlRequest::CreateGuest {
                instance: "ebm.e5.32xlarge".to_string(),
                image,
            },
            SimTime::from_secs(i),
        );
        let ControlResponse::Created { guest, .. } = response else {
            panic!("create failed: {response:?}");
        };
        guests.push(guest);
    }

    // Midday: both do I/O through the server the plane wraps.
    for (i, &guest) in guests.iter().enumerate() {
        let (status, data, _) = plane
            .server_mut()
            .guest_blk(
                guest,
                BlkRequestType::In,
                (i as u64) * 100,
                &[],
                4096,
                SimTime::from_secs(10),
            )
            .expect("tenant I/O");
        assert_eq!(status, BlkStatus::Ok);
        assert_eq!(data.len(), 4096);
    }

    // Evening: one leaves; capacity returns; a new tenant takes the slot.
    assert_eq!(
        plane.handle(
            ControlRequest::DestroyGuest { guest: guests[0] },
            SimTime::from_secs(100)
        ),
        ControlResponse::Destroyed
    );
    assert!(matches!(
        plane.handle(
            ControlRequest::CreateGuest {
                instance: "ebm.e5.32xlarge".to_string(),
                image,
            },
            SimTime::from_secs(101),
        ),
        ControlResponse::Created { .. }
    ));
}

#[test]
fn firmware_fleet_rollout_with_one_tampered_board() {
    let mut server = BmHiveServer::new(ServerConstraints::production(), 51);
    let atom = INSTANCE_CATALOG
        .iter()
        .find(|i| i.name.contains("atom"))
        .unwrap();
    let boards: Vec<_> = (0..4)
        .map(|_| server.install_board(atom).unwrap())
        .collect();
    let key = server.signing_key();

    // Roll the fleet to efi-2.0... but one update in transit is
    // tampered with.
    for (i, &board) in boards.iter().enumerate() {
        let mut update = FirmwareImage::signed(&key, "efi-virtio-2.0", 2, b"rollout".to_vec());
        if i == 2 {
            update.payload = b"rootkit".to_vec();
        }
        let result = server.update_board_firmware(board, update);
        if i == 2 {
            assert!(matches!(
                result,
                Err(ServerError::Firmware(FirmwareError::BadSignature))
            ));
        } else {
            result.unwrap();
        }
    }
    // Three boards on 2.0, the tampered target safely on 1.0.
    for (i, &board) in boards.iter().enumerate() {
        let version = server.board_firmware_version(board).unwrap();
        if i == 2 {
            assert_eq!(version, "efi-virtio-1.0");
        } else {
            assert_eq!(version, "efi-virtio-2.0");
        }
    }
    // Boards still boot guests regardless.
    let image = MachineImage::centos_evaluation(1);
    server.power_on(boards[2], &image, SimTime::ZERO).unwrap();
}

#[test]
fn foreign_signing_key_never_matches() {
    let server_a = BmHiveServer::new(ServerConstraints::production(), 60);
    let server_b = BmHiveServer::new(ServerConstraints::production(), 61);
    // Keys are derived per provider secret; different seeds yield
    // different keys, so an image signed for one fleet cannot flash on
    // another.
    assert_ne!(
        format!("{:?}", server_a.signing_key()),
        format!("{:?}", server_b.signing_key())
    );
    let _ = SigningKey::new(0); // type is public for provider tooling
}

#[test]
fn migration_prototype_composes_with_the_server() {
    // A guest leaves a server, converts to a vm (with consent), and the
    // vacated board hosts someone else meanwhile.
    let mut server = BmHiveServer::new(ServerConstraints::production(), 52);
    let image = MachineImage::centos_evaluation(1);
    let board = server.install_board(&INSTANCE_CATALOG[0]).unwrap();
    let guest = server.power_on(board, &image, SimTime::ZERO).unwrap();

    // Detach the session-equivalent: power off on this server, convert a
    // standalone session (the prototype operates below the control
    // plane).
    server.power_off(guest).unwrap();
    let standalone = BmGuestSession::new(
        IoBondProfile::fpga(),
        MacAddr::for_guest(42),
        128,
        InstanceLimits::production(),
    );
    let converted = convert_to_vm(
        standalone,
        GuestOs::KnownLinux,
        MigrationPolicy {
            tenant_consents_to_injection: true,
        },
        SimTime::from_secs(1),
        5,
    )
    .unwrap();
    assert_eq!(converted.mac, MacAddr::for_guest(42));

    // The board is already reusable.
    assert!(server
        .power_on(board, &image, SimTime::from_secs(2))
        .is_ok());
}
