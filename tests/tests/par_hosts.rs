//! The intra-run parallelism contract, end to end: a host-sharded run
//! at any worker-pool width is bit-exact with the serial fold — shard
//! values land in host-index order, censuses and telemetry registries
//! merge order-independently, and the `--jobs`-aware experiments
//! render byte-identically at every width.
//!
//! The matrix here is deliberately reduced (debug builds are slow); CI
//! additionally `cmp`s `repro --jobs 4` against `--jobs 1` through the
//! release binary on the full fleet_scale / region_census experiments.

use bmhive_bench::par::{self, host_stream};
use bmhive_cloud::fleet::{ExitCensus, ExitRateStream, RegionHostDay};
use bmhive_telemetry as telemetry;

const THRESHOLDS: [f64; 3] = [10_000.0, 50_000.0, 100_000.0];
const WIDTHS: [usize; 4] = [1, 2, 4, 8];

/// Runs `f` under a worker pool of `width`, restoring width 1 after.
fn at_width<T>(width: usize, f: impl FnOnce() -> T) -> T {
    par::set_jobs(width);
    let out = f();
    par::set_jobs(1);
    out
}

#[test]
fn sharded_census_merge_is_bit_exact_at_every_width_and_seed() {
    for seed in [1u64, 7, 0xDEAD] {
        for hosts in [1usize, 3, 8, 13] {
            let census_host = |host: usize| {
                ExitCensus::run_on(
                    2_000,
                    &THRESHOLDS,
                    seed,
                    host_stream(ExitRateStream::CENSUS_STREAM, host),
                )
            };
            let fold = |shards: Vec<ExitCensus>| {
                let mut merged = shards[0].clone();
                for shard in &shards[1..] {
                    merged.merge(shard);
                }
                merged
            };
            let serial = fold(at_width(1, || par::run_hosts(hosts, seed, census_host)));
            assert_eq!(serial.total(), 2_000 * hosts as u64);
            for width in WIDTHS {
                let parallel = fold(at_width(width, || par::run_hosts(hosts, seed, census_host)));
                assert_eq!(serial.rows(), parallel.rows(), "rows at width {width}");
                assert_eq!(serial.total(), parallel.total());
                for p in [50.0, 99.0, 99.9] {
                    assert_eq!(
                        serial.rate_percentile(p).to_bits(),
                        parallel.rate_percentile(p).to_bits(),
                        "p{p} must be bit-identical at {hosts} hosts, width \
                         {width}, seed {seed}"
                    );
                }
            }
        }
    }
}

#[test]
fn worker_registries_fold_bit_exactly_across_widths() {
    let body = |host: usize| {
        telemetry::counter("par_test.hosts", 1);
        telemetry::gauge_max("par_test.peak", (host * 31 % 7) as f64);
        telemetry::timer(
            "par_test.span",
            bmhive_sim::SimDuration::from_nanos(1 + host as u64 * 991),
        );
        telemetry::add_events(3);
        host
    };
    let registry_at = |width: usize, hosts: usize, seed: u64| {
        telemetry::set_enabled(true);
        telemetry::reset();
        let values = at_width(width, || par::run_hosts(hosts, seed, body));
        let snap = telemetry::snapshot();
        telemetry::set_enabled(false);
        telemetry::reset();
        assert_eq!(values, (0..hosts).collect::<Vec<usize>>());
        (telemetry::export::registry_json(&snap.registry), snap)
    };
    for seed in [2u64, 11] {
        for hosts in [1usize, 5, 12] {
            let (serial_json, serial_snap) = registry_at(1, hosts, seed);
            for width in WIDTHS {
                let (json, snap) = registry_at(width, hosts, seed);
                assert_eq!(
                    serial_json, json,
                    "registry fold diverged at {hosts} hosts, width {width}, seed {seed}"
                );
                assert_eq!(serial_snap.sim_events, snap.sim_events);
                // The timer's float sum is the order-sensitive term;
                // the host-index fold must pin it to the bit.
                assert_eq!(
                    serial_snap
                        .registry
                        .timer("par_test.span")
                        .unwrap()
                        .mean()
                        .to_bits(),
                    snap.registry
                        .timer("par_test.span")
                        .unwrap()
                        .mean()
                        .to_bits()
                );
            }
        }
    }
}

#[test]
fn region_host_days_merge_identically_at_every_width() {
    let seed = 3u64;
    let hosts = 6usize;
    let day_of = |host: usize| {
        RegionHostDay::run(
            64,
            &THRESHOLDS,
            seed,
            host_stream(0xbe91, host),
            host_stream(0x09b5, host),
        )
    };
    let fold = |days: Vec<RegionHostDay>| {
        let mut region = days[0].clone();
        for day in &days[1..] {
            region.merge(day);
        }
        region
    };
    let serial = fold(at_width(1, || par::run_hosts(hosts, seed, day_of)));
    for width in WIDTHS {
        let parallel = fold(at_width(width, || par::run_hosts(hosts, seed, day_of)));
        assert_eq!(serial.arrivals, parallel.arrivals, "width {width}");
        assert_eq!(serial.departures, parallel.departures);
        assert_eq!(serial.peak_guests, parallel.peak_guests);
        assert_eq!(serial.guest_hours, parallel.guest_hours);
        assert_eq!(serial.census.rows(), parallel.census.rows());
        for p in [50.0, 99.0, 99.9] {
            assert_eq!(
                serial.shared_preempt_percentile(p).to_bits(),
                parallel.shared_preempt_percentile(p).to_bits()
            );
            assert_eq!(
                serial.exclusive_preempt_percentile(p).to_bits(),
                parallel.exclusive_preempt_percentile(p).to_bits()
            );
        }
    }
}

#[test]
fn parallel_experiments_render_byte_identically_at_every_width() {
    for id in bmhive_bench::PARALLEL_EXPERIMENT_IDS {
        let serial = at_width(1, || bmhive_bench::run_experiment(id, 1).expect("known id"));
        for width in [2usize, 4, 8] {
            let parallel = at_width(width, || {
                bmhive_bench::run_experiment(id, 1).expect("known id")
            });
            assert_eq!(
                serial, parallel,
                "{id} must render byte-identically at --jobs {width}"
            );
        }
    }
}
