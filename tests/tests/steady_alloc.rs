//! The zero-allocation steady-state contract, end to end: with the
//! counting allocator installed (as the `repro` binary installs it), a
//! warmed timer wheel churns without touching the allocator at all, and
//! a warmed experiment run stays under the allocs-per-event gate the
//! bench harness enforces in CI.
//!
//! "Warmed" is the operative word: the first run of anything pays for
//! slabs, histograms, and report buffers. The gate is about what
//! happens after — the steady state the paper's sustained-load numbers
//! come from — so every measurement here warms first and meters second,
//! exactly as `repro bench` does (its alloc-metered run happens after
//! the timing repeats).

use bmhive_sim::{EventQueue, SimRng, SimTime};
use bmhive_telemetry::alloc::{self, CountingAlloc};

// Each integration test binary links its own allocator; this is the
// same installation line the `repro` binary uses.
#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::system();

/// One schedule/drain cycle against the wheel: a burst of randomly
/// spread timers, drained in whole-tick batches through a reused
/// scratch buffer.
fn churn_cycle(
    q: &mut EventQueue<u64>,
    rng: &mut SimRng,
    base: &mut u64,
    scratch: &mut Vec<(SimTime, u64)>,
) -> u64 {
    for i in 0..64u64 {
        let at = *base + 1 + rng.below(1 << 20);
        q.schedule(SimTime::from_nanos(at), i);
    }
    let mut drained = 0u64;
    while q.pop_batch(scratch) > 0 {
        drained += scratch.len() as u64;
        *base = scratch[0].0.as_nanos();
    }
    drained
}

#[test]
fn warmed_timer_wheel_churns_with_zero_allocations() {
    assert!(alloc::installed(), "the test binary installs CountingAlloc");
    let mut q = EventQueue::new();
    let mut rng = SimRng::with_stream(7, 0xA110C);
    let mut base = 0u64;
    let mut scratch = Vec::new();
    // Warm-up: grow the slab, the front buffer, and the batch scratch
    // to their steady-state footprint.
    let mut drained = 0u64;
    for _ in 0..200 {
        drained += churn_cycle(&mut q, &mut rng, &mut base, &mut scratch);
    }
    assert_eq!(drained, 200 * 64, "warm-up must drain everything");
    // Steady state: the slab free-list recycles every node, batches
    // reuse the scratch, cascades relink in place. Not one allocation.
    let (drained, allocs) = alloc::measure_allocs(|| {
        let mut n = 0u64;
        for _ in 0..5_000 {
            n += churn_cycle(&mut q, &mut rng, &mut base, &mut scratch);
        }
        n
    });
    assert_eq!(drained, 5_000 * 64);
    assert_eq!(
        allocs, 0,
        "a warmed wheel must not allocate: {allocs} allocations over 320k events"
    );
}

#[test]
fn warmed_fig1_run_stays_under_the_alloc_gate() {
    // Pre-optimization, one fig1 run cost 154 allocations (hour-buffer
    // collects and percentile clones) over 960k events. The PR's
    // acceptance gate is a >= 50% cut; the slab wheel plus buffer
    // reuse land far below it.
    let _ = bmhive_bench::run_experiment("fig1", 1).expect("known id");
    let (report, allocs) =
        alloc::measure_allocs(|| bmhive_bench::run_experiment("fig1", 1).expect("known id"));
    assert!(!report.is_empty());
    assert!(
        allocs <= 77,
        "warmed fig1 run allocated {allocs} times (gate: 77, half the pre-PR 154)"
    );
}

#[test]
fn warmed_traffic_run_stays_under_the_alloc_gate() {
    // Pre-optimization, traffic_policies cost 61,275 allocations over
    // 231,314 events (0.26 per arrival: a depth snapshot per dispatch
    // plus an ever-growing request table). Depth scratch + request
    // slot recycling cut it to well under half.
    let _ = bmhive_bench::run_experiment("traffic_policies", 1).expect("known id");
    let (report, allocs) = alloc::measure_allocs(|| {
        bmhive_bench::run_experiment("traffic_policies", 1).expect("known id")
    });
    assert!(!report.is_empty());
    // The driver slab + gather scratch work later cut the same run to
    // ~970 allocations; the gate rides down with it (2,000 leaves
    // headroom for allocator noise without readmitting per-op churn).
    assert!(
        allocs <= 2_000,
        "warmed traffic_policies run allocated {allocs} times (gate: 2,000, was 30,000 pre-slab)"
    );
}

#[test]
fn warmed_faults_run_stays_under_the_alloc_gate() {
    // Pre-optimization, one faults run cost 3,422 allocations over
    // 2,250 events (1.52 per event: per-op chain Vecs, HashMap churn in
    // the posted maps, and gather copies). The driver slab, posted-slot
    // slabs, and gather_into scratch reuse cut it by well over half.
    let _ = bmhive_bench::run_experiment("faults", 1).expect("known id");
    let (report, allocs) =
        alloc::measure_allocs(|| bmhive_bench::run_experiment("faults", 1).expect("known id"));
    assert!(!report.is_empty());
    assert!(
        allocs <= 1_400,
        "warmed faults run allocated {allocs} times (gate: 1,400, well under half the pre-PR 3,422)"
    );
}
