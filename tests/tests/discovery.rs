//! Register-level device discovery: drive the virtio-pci transport the
//! way a guest's firmware and kernel actually would — config-space scan,
//! BAR sizing, capability walk, feature negotiation, queue programming —
//! across the `bmhive-pcie` and `bmhive-virtio` crates together.

use bmhive_pcie::{Bdf, PciBus};
use bmhive_sim::SimTime;
use bmhive_virtio::{
    status, DeviceType, Feature, VirtioPciFunction, CAP_COMMON_CFG, CAP_DEVICE_CFG, CAP_ISR_CFG,
    CAP_NOTIFY_CFG,
};

/// Reads a capability's little-endian u32 body field.
fn cap_u32(bus: &PciBus, bdf: Bdf, cap_offset: u16, field: u16) -> u32 {
    bus.config_read(bdf, cap_offset + field, 4)
}

#[test]
fn firmware_discovers_and_drives_a_virtio_net_function() {
    let mut bus = PciBus::new();
    let net = VirtioPciFunction::new(
        DeviceType::Net,
        Feature::NetMac as u64 | Feature::RingIndirectDesc as u64,
        256,
        bmhive_virtio::NetConfig::with_mac([0x52, 0x54, 0, 0, 0, 9])
            .to_bytes()
            .to_vec(),
    );
    let blk = VirtioPciFunction::new(
        DeviceType::Block,
        Feature::BlkFlush as u64,
        128,
        bmhive_virtio::BlkConfig::with_capacity_bytes(40 << 30)
            .to_bytes()
            .to_vec(),
    );
    bus.plug(Bdf::new(0, 4, 0), Box::new(net));
    bus.plug(Bdf::new(0, 5, 0), Box::new(blk));

    // 1. Scan: find virtio functions by vendor id.
    let mut found = Vec::new();
    for dev in 0..32 {
        let bdf = Bdf::new(0, dev, 0);
        if bus.config_read(bdf, 0, 2) == 0x1af4 {
            found.push((bdf, bus.config_read(bdf, 2, 2)));
        }
    }
    assert_eq!(found.len(), 2);
    let (net_bdf, net_id) = found[0];
    assert_eq!(net_id, 0x1041, "modern virtio-net device id");
    assert_eq!(found[1].1, 0x1042, "modern virtio-blk device id");

    // 2. Size and map BARs.
    let mapped = bus.enumerate_and_map(0xfe00_0000);
    assert_eq!(mapped.len(), 2);
    let net_bar = mapped.iter().find(|m| m.bdf == net_bdf).unwrap();

    // 3. Walk the capability list for the four virtio windows.
    let device = bus.device(net_bdf).unwrap();
    let caps = device.config().capabilities();
    let vendor_caps: Vec<u16> = caps
        .iter()
        .filter(|(_, id)| *id == 0x09)
        .map(|(off, _)| *off)
        .collect();
    assert_eq!(vendor_caps.len(), 4);
    let mut windows = std::collections::HashMap::new();
    for off in vendor_caps {
        let cfg_type = bus.config_read(net_bdf, off + 3, 1) as u8;
        let offset = cap_u32(&bus, net_bdf, off, 8);
        let length = cap_u32(&bus, net_bdf, off, 12);
        windows.insert(cfg_type, (u64::from(offset), length));
    }
    for t in [CAP_COMMON_CFG, CAP_NOTIFY_CFG, CAP_ISR_CFG, CAP_DEVICE_CFG] {
        assert!(windows.contains_key(&t), "missing cfg_type {t}");
    }

    // 4. Read the MAC out of the device-config window via MMIO.
    let (dev_off, _) = windows[&CAP_DEVICE_CFG];
    let mmio =
        |bus: &mut PciBus, off: u64, w: u8| bus.mmio_read(net_bar.base + off, w, SimTime::ZERO);
    let mac0 = mmio(&mut bus, dev_off, 1);
    let mac5 = mmio(&mut bus, dev_off + 5, 1);
    assert_eq!((mac0, mac5), (0x52, 9));

    // 5. Status handshake through the common window.
    let (common, _) = windows[&CAP_COMMON_CFG];
    let status_reg = net_bar.base + common + 0x14;
    bus.mmio_write(status_reg, 1, u32::from(status::ACKNOWLEDGE), SimTime::ZERO);
    bus.mmio_write(
        status_reg,
        1,
        u32::from(status::ACKNOWLEDGE | status::DRIVER),
        SimTime::ZERO,
    );
    // Feature negotiation.
    bus.mmio_write(net_bar.base + common, 4, 0, SimTime::ZERO);
    let f_lo = bus.mmio_read(net_bar.base + common + 0x04, 4, SimTime::ZERO);
    bus.mmio_write(net_bar.base + common + 0x08, 4, 0, SimTime::ZERO);
    bus.mmio_write(net_bar.base + common + 0x0c, 4, f_lo, SimTime::ZERO);
    bus.mmio_write(net_bar.base + common + 0x08, 4, 1, SimTime::ZERO);
    bus.mmio_write(net_bar.base + common + 0x0c, 4, 1, SimTime::ZERO); // Version1 bit 32
    bus.mmio_write(
        status_reg,
        1,
        u32::from(status::ACKNOWLEDGE | status::DRIVER | status::FEATURES_OK),
        SimTime::ZERO,
    );
    assert_eq!(
        bus.mmio_read(status_reg, 1, SimTime::ZERO) as u8,
        status::ACKNOWLEDGE | status::DRIVER | status::FEATURES_OK
    );

    // 6. Program the rx queue through the select/size/address registers.
    bus.mmio_write(net_bar.base + common + 0x16, 2, 0, SimTime::ZERO); // queue_select = 0
    assert_eq!(
        bus.mmio_read(net_bar.base + common + 0x18, 2, SimTime::ZERO),
        256
    );
    bus.mmio_write(net_bar.base + common + 0x20, 4, 0x4_0000, SimTime::ZERO); // desc lo
    bus.mmio_write(net_bar.base + common + 0x28, 4, 0x5_0000, SimTime::ZERO); // driver lo
    bus.mmio_write(net_bar.base + common + 0x30, 4, 0x6_0000, SimTime::ZERO); // device lo
    bus.mmio_write(net_bar.base + common + 0x1c, 2, 1, SimTime::ZERO); // enable

    // 7. DRIVER_OK and a doorbell through the notify window.
    bus.mmio_write(
        status_reg,
        1,
        u32::from(status::ACKNOWLEDGE | status::DRIVER | status::FEATURES_OK | status::DRIVER_OK),
        SimTime::ZERO,
    );
    let (notify, _) = windows[&CAP_NOTIFY_CFG];
    bus.mmio_write(net_bar.base + notify, 2, 0, SimTime::from_micros(10));

    // The device model observed everything.
    let device = bus.device(net_bdf).unwrap();
    // (Downcast via a fresh read of the config space state is not
    // possible through the trait; verify behaviourally instead.)
    assert!(device.config().memory_enabled());

    // ISR: raise + acknowledge through the ISR window.
    let (isr, _) = windows[&CAP_ISR_CFG];
    assert_eq!(bus.mmio_read(net_bar.base + isr, 1, SimTime::ZERO), 0);
}

#[test]
fn unplugged_function_reads_all_ones_mid_operation() {
    // Surprise removal (board power-off) mid-discovery.
    let mut bus = PciBus::new();
    let bdf = Bdf::new(0, 1, 0);
    bus.plug(
        bdf,
        Box::new(VirtioPciFunction::new(DeviceType::Net, 0, 64, vec![0; 12])),
    );
    assert_eq!(bus.config_read(bdf, 0, 2), 0x1af4);
    bus.unplug(bdf).unwrap();
    assert_eq!(bus.config_read(bdf, 0, 2), 0xffff);
    assert_eq!(bus.mmio_read(0xfe00_0000, 4, SimTime::ZERO), 0xffff_ffff);
}
