//! The streaming-census contract, end to end: with the counting
//! allocator installed (as the `repro` binary installs it), the
//! `fleet_scale` experiment meters real allocations, a million-guest
//! census costs no more memory than a ten-thousand-guest one, and the
//! streamed statistics are exactly a fold of the materialized draws.

use bmhive_cloud::fleet::{ExitCensus, ExitRateStream, PreemptionStudy};
use bmhive_telemetry::alloc::{self, CountingAlloc};

// Each integration test binary links its own allocator; this is the
// same installation line the `repro` binary uses.
#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::system();

const THRESHOLDS: [f64; 3] = [10_000.0, 50_000.0, 100_000.0];

fn census_peak(vms: u64, seed: u64) -> (ExitCensus, u64) {
    alloc::measure_peak(|| {
        let mut census = ExitCensus::new(&THRESHOLDS);
        for rate in ExitRateStream::production(seed).take(vms as usize) {
            census.observe(rate);
        }
        census
    })
}

#[test]
fn counting_allocator_is_installed_and_counts() {
    assert!(alloc::installed(), "the test binary installs CountingAlloc");
    let (v, peak) = alloc::measure_peak(|| vec![0u8; 1 << 20]);
    assert!(peak >= 1 << 20, "a 1 MiB Vec must meter >= 1 MiB: {peak}");
    drop(v);
}

#[test]
fn census_memory_is_constant_in_guest_count() {
    let (small, small_peak) = census_peak(10_000, 1);
    let (large, large_peak) = census_peak(1_000_000, 1);
    assert_eq!(small.total(), 10_000);
    assert_eq!(large.total(), 1_000_000);
    assert!(small_peak > 0, "the census allocates its accumulators");
    // O(1): the 100x bigger fleet allocates exactly the same
    // accumulators; allow slack only for allocator jitter.
    assert!(
        large_peak <= small_peak + 64 * 1024,
        "1M-guest census peak {large_peak} B vs 10k-guest {small_peak} B"
    );
    // And the materialized equivalent is visibly NOT O(1): the Vec of
    // draws alone dwarfs the streaming accumulators.
    let (rates, materialized_peak) = alloc::measure_peak(|| {
        ExitRateStream::production(1)
            .take(100_000)
            .collect::<Vec<f64>>()
    });
    assert_eq!(rates.len(), 100_000);
    assert!(
        materialized_peak > 4 * small_peak,
        "materializing 100k draws ({materialized_peak} B) should dwarf the \
         streaming census ({small_peak} B)"
    );
}

#[test]
fn streamed_census_fractions_equal_a_materialized_fold() {
    let vms = 10_000u64;
    let rates: Vec<f64> = ExitRateStream::production(5).take(vms as usize).collect();
    let mut by_hand = ExitCensus::new(&THRESHOLDS);
    for &rate in &rates {
        by_hand.observe(rate);
    }
    let (streamed, _) = census_peak(vms, 5);
    assert_eq!(by_hand.rows(), streamed.rows());
    assert_eq!(by_hand.total(), streamed.total());
    for p in [50.0, 99.0, 99.9] {
        assert_eq!(
            by_hand.rate_percentile(p).to_bits(),
            streamed.rate_percentile(p).to_bits(),
            "p{p} must be bit-identical"
        );
    }
}

#[test]
fn preemption_stream_is_allocation_bounded_too() {
    let (_, small_peak) = alloc::measure_peak(|| PreemptionStudy::stream(1_000, 2));
    let (_, large_peak) = alloc::measure_peak(|| PreemptionStudy::stream(8_000, 2));
    assert!(
        large_peak <= small_peak + 64 * 1024,
        "8x more VMs must not grow the streaming study: {large_peak} B vs {small_peak} B"
    );
}

#[test]
fn fleet_scale_experiment_gates_all_pass() {
    let report = bmhive_bench::run_experiment("fleet_scale", 1).expect("known id");
    assert!(
        !report.contains("SKIPPED"),
        "allocator installed, so the memory gate must run:\n{report}"
    );
    assert!(!report.contains("-> FAIL"), "gate failed:\n{report}");
    assert_eq!(
        report.matches("-> PASS").count(),
        5,
        "all five gates report PASS:\n{report}"
    );
    // Deterministic in the seed: two renders are byte-identical (the
    // sweep relies on this).
    assert_eq!(
        report,
        bmhive_bench::run_experiment("fleet_scale", 1).expect("known id"),
        "fleet_scale must render byte-identically per seed"
    );
}
